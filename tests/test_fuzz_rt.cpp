// Real-thread forced-yield schedule fuzzing (env/fuzz_env.h): every rt
// object plus the sharded store runs its FuzzEnv instantiation on real
// threads under seeded yield/backoff injection at each Env primitive
// boundary, with linearizability checked on the recorded history and — for
// the history-independent objects — the quiescent memory image compared
// against a solo replay of the linearization witness (HI: the final image
// must be a function of the abstract state alone, so the witness replay
// must land on the SAME image).
//
// Witness pinning: overlapping state-changing operations can admit several
// valid linearizations with DIFFERENT final abstract states (insert(v) ‖
// remove(v) both orders), and the checker returns an arbitrary one — so each
// suite runs a solo AUDIT phase after the threads join (final reads /
// full-domain lookups, recorded into the same history). Audit operations
// follow everything in real time, so every valid linearization of the
// extended history must end in the audited state: the witness's final state
// is then exactly the state the object actually reached, and the image
// comparison is sound.
//
// The pipeline's positive control is the deliberately broken counter
// (tests/fuzz_common.h): the fuzzer must CATCH its lost update on real
// threads within the default iteration budget, the explorer must REPRODUCE
// it in the step model, verify/shrink.h must SHRINK the failing schedule,
// and the result is printed as a paste-ready ScheduleTrace literal (and
// persisted under $HI_TRACE_DUMP_DIR for the nightly soak's artifacts).
//
// Iteration budget: HI_RT_FUZZ_ITERS (default 20 per object — the CI smoke
// bound; the nightly workflow raises it). Every failure message carries the
// iteration's seed, which fully determines the op scripts and the per-thread
// injection streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "algo/hi_set.h"
#include "algo/leaky_universal.h"
#include "algo/max_register.h"
#include "algo/registers.h"
#include "algo/rllsc.h"
#include "algo/sharded_set.h"
#include "algo/universal.h"
#include "algo/wait_free_sim.h"
#include "env/fuzz_env.h"
#include "fuzz_common.h"
#include "sim/explorer.h"
#include "sim/trace.h"
#include "spec/counter_spec.h"
#include "spec/max_register_spec.h"
#include "spec/register_spec.h"
#include "spec/rllsc_spec.h"
#include "spec/set_spec.h"
#include "util/rng.h"
#include "verify/linearizability.h"
#include "verify/shrink.h"

namespace hi {
namespace {

using env::FuzzEnv;
using FuzzPacked = env::PackedBins<FuzzEnv>;

constexpr int kDefaultIters = 20;

/// One object family under the fuzzer: `iters` iterations, each with a
/// fresh object, per-(seed, pid) deterministic op scripts, barrier-released
/// armed threads, a solo audit phase pinning the final abstract state (see
/// file comment), then a linearizability check over the extended history
/// and a caller-supplied final check (witness replay, invariants). `policy`
/// tunes the injection aggressiveness (default: the gentle CI policy).
template <typename S, typename ScriptGen, typename MakeObject, typename RunOp,
          typename Audit, typename FinalCheck>
void fuzz_object_suite(const char* name, const S& spec, int num_threads,
                       std::uint64_t seed0, ScriptGen&& script_gen,
                       MakeObject&& make_object, RunOp&& run_op, Audit&& audit,
                       FinalCheck&& final_check,
                       env::YieldPolicy policy = env::YieldPolicy{}) {
  using Op = typename S::Op;
  using Resp = typename S::Resp;
  const int iters = testing::rt_fuzz_iters(kDefaultIters);
  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed =
        util::hash_combine(seed0, static_cast<std::uint64_t>(iter));
    auto object = make_object();
    std::vector<std::vector<Op>> scripts(
        static_cast<std::size_t>(num_threads));
    for (int pid = 0; pid < num_threads; ++pid) {
      util::Xoshiro256 rng(
          util::hash_combine(seed, 0x5c21 + static_cast<std::uint64_t>(pid)));
      scripts[static_cast<std::size_t>(pid)] = script_gen(pid, rng);
    }
    testing::RtHistoryRecorder<Op, Resp> recorder(num_threads);
    testing::run_fuzz_threads(num_threads, seed, policy,
                              [&](int pid) {
                                for (const Op& op :
                                     scripts[static_cast<std::size_t>(pid)]) {
                                  recorder.run(pid, op, [&] {
                                    return run_op(*object, pid, op);
                                  });
                                }
                              });
    // Injector disarmed on this thread: the audit runs solo and unperturbed.
    audit(*object, recorder);
    const auto history = recorder.build();
    ASSERT_EQ(history.num_pending(), 0u);
    const verify::LinResult lin = verify::check_linearizable(spec, history);
    ASSERT_TRUE(lin.ok())
        << name << ": non-linearizable real-thread history at seed " << seed;
    final_check(*object, history, lin.witness, seed);
  }
}

/// The abstract state a linearization witness ends in (spec fold).
template <typename S, typename Hist>
typename S::State witness_final_state(const S& spec, const Hist& hist,
                                      const std::vector<std::size_t>& witness) {
  typename S::State state = spec.initial_state();
  for (const std::size_t idx : witness) {
    state = spec.apply(state, hist.entries()[idx].op).first;
  }
  return state;
}

template <typename Alg>
std::vector<std::uint8_t> image_of(Alg& alg) {
  std::vector<std::uint8_t> image;
  alg.encode_memory(image);
  return image;
}

// --------------------------------------------------------- positive control

TEST(FuzzRt, PositiveControl_BrokenCounterCaughtReproducedShrunk) {
  const testing::NaiveCounterSpec spec;

  // 1. CATCH on real threads: two threads race two incs each; the injector
  // yields inside the read-then-write window, so the lost update surfaces
  // well within the default budget. Aggressive policy: the control should
  // fire fast even on a loaded single-core CI runner.
  const env::YieldPolicy aggressive{/*permille=*/700, /*max_yields=*/4,
                                    /*max_spins=*/64};
  const int iters = testing::rt_fuzz_iters(kDefaultIters) + 30;
  std::optional<std::uint64_t> caught_seed;
  for (int iter = 0; iter < iters && !caught_seed.has_value(); ++iter) {
    const std::uint64_t seed =
        util::hash_combine(0xb20c, static_cast<std::uint64_t>(iter));
    testing::BrokenCounterAlg<FuzzEnv> counter{FuzzEnv::Ctx{}};
    testing::RtHistoryRecorder<testing::NaiveCounterSpec::Op,
                               testing::NaiveCounterSpec::Resp>
        recorder(2);
    testing::run_fuzz_threads(2, seed, aggressive, [&](int pid) {
      for (int i = 0; i < 6; ++i) {
        recorder.run(pid, testing::NaiveCounterSpec::inc(),
                     [&] { return counter.inc().get(); });
      }
    });
    if (!verify::check_linearizable(spec, recorder.build()).ok()) {
      caught_seed = seed;
    }
  }
  EXPECT_TRUE(caught_seed.has_value())
      << "the yield fuzzer failed to catch the seeded lost update in "
      << iters << " iterations — the positive control is broken";

  // 2. REPRODUCE in the step model: the same single-source body under
  // SimEnv, exhaustively explored until a non-linearizable complete
  // execution appears.
  sim::Explorer<testing::NaiveCounterSpec, testing::BrokenCounterSystem>
      explorer(
          spec,
          [] { return std::make_unique<testing::BrokenCounterSystem>(2); },
          {{testing::NaiveCounterSpec::inc(), testing::NaiveCounterSpec::inc()},
           {testing::NaiveCounterSpec::inc(),
            testing::NaiveCounterSpec::inc()}});
  std::optional<std::vector<sim::Decision>> failing;
  (void)explorer.explore(
      {.max_depth = 32, .max_executions = 100'000}, nullptr,
      [&](testing::BrokenCounterSystem&, const auto& hist) {
        if (!failing.has_value() &&
            !verify::check_linearizable(spec, hist).ok()) {
          failing = explorer.current_prefix();
        }
      });
  ASSERT_TRUE(failing.has_value())
      << "the step model cannot reproduce the lost update";

  // 3. SHRINK: greedy window removal over try_execute; the failure must
  // survive (complete history, still non-linearizable).
  const auto still_fails = [&](const auto& hist) {
    return hist.num_pending() == 0 &&
           !verify::check_linearizable(spec, hist).ok();
  };
  const std::vector<sim::Decision> shrunk = verify::shrink_schedule(
      *failing,
      [&](const std::vector<sim::Decision>& candidate) {
        return explorer.try_execute(candidate);
      },
      still_fails);
  EXPECT_LT(shrunk.size(), failing->size())
      << "shrinking removed nothing from a 12-decision schedule whose "
         "minimal counterexample is 6 decisions";
  const auto shrunk_hist = explorer.try_execute(shrunk);
  ASSERT_TRUE(shrunk_hist.has_value());
  EXPECT_TRUE(still_fails(*shrunk_hist));

  // 4. PERSIST: the paste-ready ScheduleTrace literal (sim/trace.h).
  const sim::ScheduleTrace trace = explorer.trace_of(shrunk);
  const std::string literal = trace.pretty();
  std::cout << "shrunk broken-counter ScheduleTrace ("
            << (caught_seed ? *caught_seed : 0) << " caught it on threads):\n"
            << literal << std::endl;
  EXPECT_FALSE(literal.empty());
  testing::dump_failing_trace("broken_counter_shrunk", literal);
}

// --------------------------------------------------------- SWSR registers

std::vector<spec::RegisterSpec::Op> writer_script(std::uint32_t k, int ops,
                                                  util::Xoshiro256& rng) {
  std::vector<spec::RegisterSpec::Op> script;
  for (int i = 0; i < ops; ++i) {
    script.push_back(spec::RegisterSpec::write(
        static_cast<std::uint32_t>(rng.next_in(1, k))));
  }
  return script;
}

TEST(FuzzRt, VidyasankarRegister_Linearizable) {
  // Algorithm 1: linearizable but NOT HI — history check only.
  const std::uint32_t k = 6;
  const spec::RegisterSpec spec(k, 1);
  using Alg = algo::VidyasankarAlg<FuzzEnv, FuzzPacked>;
  fuzz_object_suite(
      "vidyasankar", spec, 2, 0xa101,
      [&](int pid, util::Xoshiro256& rng) {
        if (pid == 0) return writer_script(k, 5, rng);
        return std::vector<spec::RegisterSpec::Op>(4,
                                                   spec::RegisterSpec::read());
      },
      [&] { return std::make_unique<Alg>(FuzzEnv::Ctx{}, k, 1); },
      [](Alg& reg, int, const spec::RegisterSpec::Op& op) -> std::uint32_t {
        if (op.kind == spec::RegisterSpec::Kind::kWrite) {
          (void)reg.write(op.value).get();
          return 0;  // the spec's Write response
        }
        return reg.read().get();
      },
      [](Alg&, auto&) {},  // no final check, so nothing to pin
      [](Alg&, const auto&, const auto&, std::uint64_t) {});
}

TEST(FuzzRt, LockFreeHiRegister_LinearizableAndQuiescentCanonical) {
  const std::uint32_t k = 6;
  const spec::RegisterSpec spec(k, 1);
  using Alg = algo::LockFreeHiAlg<FuzzEnv, FuzzPacked>;
  fuzz_object_suite(
      "lockfree-register", spec, 2, 0xa102,
      [&](int pid, util::Xoshiro256& rng) {
        if (pid == 0) return writer_script(k, 5, rng);
        return std::vector<spec::RegisterSpec::Op>(4,
                                                   spec::RegisterSpec::read());
      },
      [&] { return std::make_unique<Alg>(FuzzEnv::Ctx{}, k, 1); },
      [](Alg& reg, int, const spec::RegisterSpec::Op& op) -> std::uint32_t {
        if (op.kind == spec::RegisterSpec::Kind::kWrite) {
          (void)reg.write(op.value).get();
          return 0;
        }
        // Packed K ≤ 64: a TryRead is a full-array word snapshot, so it
        // always succeeds — the bound never binds.
        return reg.read_bounded(1'000'000).get().value();
      },
      [](Alg& reg, auto& recorder) {
        recorder.run(1, spec::RegisterSpec::read(), [&] {
          return reg.read_bounded(1'000'000).get().value();
        });
      },
      [&](Alg& reg, const auto& hist, const std::vector<std::size_t>& witness,
          std::uint64_t seed) {
        Alg replayed(FuzzEnv::Ctx{}, k, 1);
        for (const std::size_t idx : witness) {
          const auto& e = hist.entries()[idx];
          if (e.op.kind == spec::RegisterSpec::Kind::kWrite) {
            (void)replayed.write(e.op.value).get();
          } else {
            (void)replayed.read_bounded(1).get();
          }
        }
        EXPECT_EQ(image_of(reg), image_of(replayed))
            << "state-quiescent HI image diverges from witness replay at seed "
            << seed;
      });
}

TEST(FuzzRt, WaitFreeHiRegister_LinearizableAndQuiescentCanonical) {
  const std::uint32_t k = 6;
  const spec::RegisterSpec spec(k, 1);
  using Alg = algo::WaitFreeHiAlg<FuzzEnv, FuzzPacked>;
  fuzz_object_suite(
      "waitfree-register", spec, 2, 0xa103,
      [&](int pid, util::Xoshiro256& rng) {
        if (pid == 0) return writer_script(k, 5, rng);
        return std::vector<spec::RegisterSpec::Op>(4,
                                                   spec::RegisterSpec::read());
      },
      [&] { return std::make_unique<Alg>(FuzzEnv::Ctx{}, k, 1); },
      [](Alg& reg, int, const spec::RegisterSpec::Op& op) -> std::uint32_t {
        if (op.kind == spec::RegisterSpec::Kind::kWrite) {
          (void)reg.write(op.value).get();
          return 0;
        }
        return reg.read().get();
      },
      [](Alg& reg, auto& recorder) {
        recorder.run(1, spec::RegisterSpec::read(),
                     [&] { return reg.read().get(); });
      },
      [&](Alg& reg, const auto& hist, const std::vector<std::size_t>& witness,
          std::uint64_t seed) {
        Alg replayed(FuzzEnv::Ctx{}, k, 1);
        for (const std::size_t idx : witness) {
          const auto& e = hist.entries()[idx];
          if (e.op.kind == spec::RegisterSpec::Kind::kWrite) {
            (void)replayed.write(e.op.value).get();
          } else {
            (void)replayed.read().get();
          }
        }
        EXPECT_EQ(image_of(reg), image_of(replayed))
            << "quiescent HI image diverges from witness replay at seed "
            << seed;
      });
}

TEST(FuzzRt, WaitFreeSimHiRegister_AggressiveYieldsAuditPinnedInnerImage) {
  // The wait-free simulation combinator (algo/wait_free_sim.h) on real
  // threads under the AGGRESSIVE injection policy (the positive control's
  // knobs — fuzz_object_suite's default policy is too gentle to force the
  // slow path reliably): writer pid 0 runs direct writes, reader pids 1/2
  // run helped reads. Yields inside the fast-path scan push reads onto the
  // announce/enqueue/help slow path; yields between a retirer's two CASes
  // exercise the stale-head repair; concurrent helpers race the record CAS.
  //
  // Post-checks: the extended (audit-including) history linearizes, and the
  // INNER image equals the audit-pinned unit vector e_state — Alg 2's
  // canonical-bins property survives under the combinator. The FULL image
  // is deliberately not compared against a witness replay: the combinator
  // is not state-quiescent HI (Thm 17) — its records and queue counters
  // depend on how many reads were helped, which varies per schedule.
  const std::uint32_t k = 6;
  const int num_threads = 3;
  const spec::RegisterSpec spec(k, 1);
  const env::YieldPolicy aggressive{/*permille=*/700, /*max_yields=*/4,
                                    /*max_spins=*/64};
  using Alg = algo::WaitFreeSimHiAlg<FuzzEnv, FuzzPacked>;
  const int iters = testing::rt_fuzz_iters(kDefaultIters);
  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed =
        util::hash_combine(0xa10a, static_cast<std::uint64_t>(iter));
    Alg reg(FuzzEnv::Ctx{}, k, 1, /*num_processes=*/num_threads,
            /*fast_limit=*/1);
    std::vector<std::vector<spec::RegisterSpec::Op>> scripts(num_threads);
    for (int pid = 0; pid < num_threads; ++pid) {
      util::Xoshiro256 rng(
          util::hash_combine(seed, 0x5c21 + static_cast<std::uint64_t>(pid)));
      scripts[static_cast<std::size_t>(pid)] =
          pid == 0 ? writer_script(k, 5, rng)
                   : std::vector<spec::RegisterSpec::Op>(
                         4, spec::RegisterSpec::read());
    }
    testing::RtHistoryRecorder<spec::RegisterSpec::Op, spec::RegisterSpec::Resp>
        recorder(num_threads);
    testing::run_fuzz_threads(num_threads, seed, aggressive, [&](int pid) {
      for (const spec::RegisterSpec::Op& op :
           scripts[static_cast<std::size_t>(pid)]) {
        recorder.run(pid, op, [&]() -> std::uint32_t {
          if (op.kind == spec::RegisterSpec::Kind::kWrite) {
            (void)reg.write(pid, op.value).get();
            return 0;
          }
          return reg.read(pid).get();
        });
      }
    });
    // Audit (threads joined, injector disarmed here): one solo read follows
    // everything in real time, pinning the final abstract state.
    std::uint32_t audited = 0;
    recorder.run(1, spec::RegisterSpec::read(), [&] {
      audited = reg.read(1).get();
      return audited;
    });
    const auto history = recorder.build();
    ASSERT_EQ(history.num_pending(), 0u);
    ASSERT_TRUE(verify::check_linearizable(spec, history).ok())
        << "wait-free-sim: non-linearizable real-thread history at seed "
        << seed;
    ASSERT_GE(audited, 1u);
    std::vector<std::uint8_t> expected(k, 0);
    expected[audited - 1] = 1;
    std::vector<std::uint8_t> inner;
    reg.encode_inner_memory(inner);
    EXPECT_EQ(inner, expected)
        << "inner bins diverge from the audit-pinned unit vector at seed "
        << seed;
    // Stats sanity: every op counted once; only reads can enter the slow
    // path, and each slow entry completes exactly once (owner or helper).
    EXPECT_EQ(reg.total_ops(), 14u);  // 5 writes + 8 reads + 1 audit read
    EXPECT_LE(reg.slow_path_entries(), 9u);
    EXPECT_LE(reg.helped_completions(), reg.slow_path_entries());
  }
}

TEST(FuzzRt, MaxRegister_LinearizableAndQuiescentCanonical) {
  const std::uint32_t k = 6;
  const spec::MaxRegisterSpec spec(k, 1);
  using Alg = algo::HiMaxRegisterAlg<FuzzEnv, FuzzPacked>;
  const auto make = [&] {
    return std::make_unique<Alg>(FuzzEnv::Ctx{}, k, 1, /*writer_pid=*/0,
                                 /*reader_pid=*/1);
  };
  fuzz_object_suite(
      "max-register", spec, 2, 0xa104,
      [&](int pid, util::Xoshiro256& rng) {
        std::vector<spec::MaxRegisterSpec::Op> script;
        for (int i = 0; i < (pid == 0 ? 5 : 4); ++i) {
          script.push_back(pid == 0
                               ? spec::MaxRegisterSpec::write_max(
                                     static_cast<std::uint32_t>(
                                         rng.next_in(1, k)))
                               : spec::MaxRegisterSpec::read_max());
        }
        return script;
      },
      make,
      [](Alg& reg, int pid, const spec::MaxRegisterSpec::Op& op)
          -> std::uint32_t {
        if (op.kind == spec::MaxRegisterSpec::Kind::kWriteMax) {
          (void)reg.write_max(pid, op.value).get();
          return 0;
        }
        return reg.read_max(pid).get();
      },
      [](Alg& reg, auto& recorder) {
        recorder.run(1, spec::MaxRegisterSpec::read_max(),
                     [&] { return reg.read_max(1).get(); });
      },
      [&](Alg& reg, const auto& hist, const std::vector<std::size_t>& witness,
          std::uint64_t seed) {
        auto replayed = make();
        for (const std::size_t idx : witness) {
          const auto& e = hist.entries()[idx];
          if (e.op.kind == spec::MaxRegisterSpec::Kind::kWriteMax) {
            (void)replayed->write_max(0, e.op.value).get();
          } else {
            (void)replayed->read_max(1).get();
          }
        }
        EXPECT_EQ(image_of(reg), image_of(*replayed))
            << "max-register HI image diverges from witness replay at seed "
            << seed;
      });
}

// ------------------------------------------------------------- MRMW sets

std::vector<spec::SetSpec::Op> set_script(std::uint32_t domain, int ops,
                                          util::Xoshiro256& rng) {
  std::vector<spec::SetSpec::Op> script;
  for (int i = 0; i < ops; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next_in(1, domain));
    switch (rng.next_below(3)) {
      case 0: script.push_back(spec::SetSpec::insert(v)); break;
      case 1: script.push_back(spec::SetSpec::remove(v)); break;
      default: script.push_back(spec::SetSpec::lookup(v)); break;
    }
  }
  return script;
}

bool run_set_op(auto& set, const spec::SetSpec::Op& op) {
  switch (op.kind) {
    case spec::SetSpec::Kind::kInsert: return set.insert(op.value).get();
    case spec::SetSpec::Kind::kRemove: return set.remove(op.value).get();
    default: return set.lookup(op.value).get();
  }
}

TEST(FuzzRt, HiSet_LinearizableAndPerfectHI) {
  const std::uint32_t domain = 10;
  const spec::SetSpec spec(domain);
  using Alg = algo::HiSetAlg<FuzzEnv, FuzzPacked>;
  fuzz_object_suite(
      "hi-set", spec, 3, 0xa105,
      [&](int, util::Xoshiro256& rng) { return set_script(domain, 6, rng); },
      [&] {
        return std::make_unique<Alg>(FuzzEnv::Ctx{}, domain,
                                     spec.initial_state());
      },
      [](Alg& set, int, const spec::SetSpec::Op& op) {
        return run_set_op(set, op);
      },
      [&](Alg& set, auto& recorder) {
        // Full-domain lookup sweep: pins every bit of the final abstract set.
        for (std::uint32_t v = 1; v <= domain; ++v) {
          recorder.run(0, spec::SetSpec::lookup(v),
                       [&] { return set.lookup(v).get(); });
        }
      },
      [&](Alg& set, const auto& hist, const std::vector<std::size_t>& witness,
          std::uint64_t seed) {
        Alg replayed(FuzzEnv::Ctx{}, domain, spec.initial_state());
        for (const std::size_t idx : witness) {
          (void)run_set_op(replayed, hist.entries()[idx].op);
        }
        EXPECT_EQ(image_of(set), image_of(replayed))
            << "perfect-HI set image diverges from witness replay at seed "
            << seed;
      });
}

TEST(FuzzRt, ShardedHiSet_LinearizableAndPerfectHI) {
  const std::uint32_t domain = 12;
  const spec::SetSpec spec(domain);
  using Alg = algo::ShardedHiSet<FuzzEnv, FuzzPacked>;
  const auto make = [&] {
    return std::make_unique<Alg>(FuzzEnv::Ctx{}, domain, /*shard_count=*/4,
                                 algo::ShardPlacement::kStriped,
                                 std::span<const std::uint64_t>{});
  };
  fuzz_object_suite(
      "sharded-hi-set", spec, 3, 0xa106,
      [&](int, util::Xoshiro256& rng) { return set_script(domain, 6, rng); },
      make,
      [](Alg& set, int, const spec::SetSpec::Op& op) {
        return run_set_op(set, op);
      },
      [&](Alg& set, auto& recorder) {
        for (std::uint32_t v = 1; v <= domain; ++v) {
          recorder.run(0, spec::SetSpec::lookup(v),
                       [&] { return set.lookup(v).get(); });
        }
      },
      [&](Alg& set, const auto& hist, const std::vector<std::size_t>& witness,
          std::uint64_t seed) {
        auto replayed = make();
        for (const std::size_t idx : witness) {
          (void)run_set_op(*replayed, hist.entries()[idx].op);
        }
        EXPECT_EQ(image_of(set), image_of(*replayed))
            << "sharded-store image diverges from witness replay at seed "
            << seed;
      });
}

// ----------------------------------------------------------------- R-LLSC

TEST(FuzzRt, CasRllsc_LinearizableAndContextClean) {
  const int n = 3;
  const spec::RllscSpec spec(16, n);
  using Alg = algo::CasRllscAlg<FuzzEnv>;
  fuzz_object_suite(
      "cas-rllsc", spec, n, 0xa107,
      [&](int pid, util::Xoshiro256& rng) {
        std::vector<spec::RllscSpec::Op> script;
        for (int i = 0; i < 5; ++i) {
          const auto arg = static_cast<std::uint16_t>(rng.next_below(16));
          switch (rng.next_below(6)) {
            case 0: script.push_back(spec::RllscSpec::ll(pid)); break;
            case 1: script.push_back(spec::RllscSpec::vl(pid)); break;
            case 2: script.push_back(spec::RllscSpec::sc(pid, arg)); break;
            case 3: script.push_back(spec::RllscSpec::rl(pid)); break;
            case 4: script.push_back(spec::RllscSpec::load(pid)); break;
            default: script.push_back(spec::RllscSpec::store(pid, arg)); break;
          }
        }
        // End released: every workload closes its context bit so the final
        // snapshot must show ctx == 0 (perfect HI of the cell).
        script.push_back(spec::RllscSpec::rl(pid));
        return script;
      },
      [&] { return std::make_unique<Alg>(FuzzEnv::Ctx{}, "X", 0); },
      [](Alg& cell, int pid, const spec::RllscSpec::Op& op)
          -> spec::RllscSpec::Resp {
        switch (op.kind) {
          case spec::RllscSpec::Kind::kLL:
            return {static_cast<std::uint32_t>(cell.ll(pid).get()), true};
          case spec::RllscSpec::Kind::kVL:
            return {0, cell.vl(pid).get()};
          case spec::RllscSpec::Kind::kSC:
            return {0, cell.sc(pid, op.arg).get()};
          case spec::RllscSpec::Kind::kRL:
            return {0, cell.rl(pid).get()};
          case spec::RllscSpec::Kind::kLoad:
            return {static_cast<std::uint32_t>(cell.load().get()), true};
          default:
            return {0, cell.store(op.arg).get()};
        }
      },
      [](Alg& cell, auto& recorder) {
        recorder.run(0, spec::RllscSpec::load(0), [&] {
          return spec::RllscSpec::Resp{
              static_cast<std::uint32_t>(cell.load().get()), true};
        });
      },
      [&](Alg& cell, const auto& hist, const std::vector<std::size_t>& witness,
          std::uint64_t seed) {
        const auto final_state = witness_final_state(spec, hist, witness);
        const auto word = cell.peek_word();
        EXPECT_EQ(word.value, final_state.val)
            << "cell value diverges from the witness's final state at seed "
            << seed;
        EXPECT_EQ(word.ctx, 0u)
            << "context bits leaked past the closing RLs at seed " << seed;
        EXPECT_EQ(final_state.ctx, 0u);
      });
}

// ------------------------------------------------------ universal objects

std::vector<spec::CounterSpec::Op> counter_script(int ops,
                                                  util::Xoshiro256& rng) {
  std::vector<spec::CounterSpec::Op> script;
  for (int i = 0; i < ops; ++i) {
    switch (rng.next_below(4)) {
      case 0: script.push_back(spec::CounterSpec::read()); break;
      case 1: script.push_back(spec::CounterSpec::dec()); break;
      default: script.push_back(spec::CounterSpec::inc()); break;
    }
  }
  return script;
}

TEST(FuzzRt, UniversalCounter_LinearizableAndQuiescentCanonical) {
  const int n = 3;
  const spec::CounterSpec spec(1u << 20, 10);
  using Alg = algo::UniversalAlg<FuzzEnv, spec::CounterSpec,
                                 algo::CasRllscAlg<FuzzEnv>>;
  fuzz_object_suite(
      "universal-counter", spec, n, 0xa108,
      [&](int, util::Xoshiro256& rng) { return counter_script(5, rng); },
      [&] { return std::make_unique<Alg>(FuzzEnv::Ctx{}, spec, n); },
      [](Alg& obj, int pid, const spec::CounterSpec::Op& op) {
        return obj.apply(pid, op).get();
      },
      [](Alg& obj, auto& recorder) {
        recorder.run(0, spec::CounterSpec::read(),
                     [&] { return obj.apply(0, spec::CounterSpec::read()).get(); });
      },
      [&](Alg& obj, const auto& hist, const std::vector<std::size_t>& witness,
          std::uint64_t seed) {
        // Quiescent canonical memory: head = encoded abstract state with no
        // response, all announces ⊥, no context bits — i.e. nothing about
        // WHICH ops ran survives beyond the abstract state.
        const auto final_state = witness_final_state(spec, hist, witness);
        EXPECT_EQ(obj.head_state_encoded(), spec.encode_state(final_state))
            << "head diverges from the witness's final state at seed " << seed;
        EXPECT_FALSE(obj.head_has_response()) << "seed " << seed;
        EXPECT_EQ(obj.context_union(), 0u) << "seed " << seed;
        for (int pid = 0; pid < n; ++pid) {
          EXPECT_TRUE(obj.announce_is_bottom(pid))
              << "announce[" << pid << "] leaked at seed " << seed;
        }
      });
}

TEST(FuzzRt, UniversalCombineCounter_AggressiveYieldsLinearizableAndQuiescentCanonical) {
  // Flat-combining mode on real threads under the AGGRESSIVE injection
  // policy (the positive control's knobs): yields inside the winner's
  // announce scan park it mid-combining-phase, forcing peers through the
  // foreign-combining-record spin (Env::relax) and piling announcements up
  // for the next batch. Post-checks are the same audit-pinned
  // quiescent-image contract as plain mode — the combining record, the
  // helped responses, and the batch bookkeeping must all be gone at rest,
  // leaving the canonical head/⊥/ctx-free image — plus batch-counter
  // sanity: every update is combined into exactly one installed batch.
  const int n = 3;
  const spec::CounterSpec spec(1u << 20, 10);
  const env::YieldPolicy aggressive{/*permille=*/700, /*max_yields=*/4,
                                    /*max_spins=*/64};
  using Alg = algo::UniversalAlg<FuzzEnv, spec::CounterSpec,
                                 algo::CasRllscAlg<FuzzEnv>>;
  fuzz_object_suite(
      "universal-combine-counter", spec, n, 0xa10b,
      [&](int, util::Xoshiro256& rng) { return counter_script(5, rng); },
      [&] {
        return std::make_unique<Alg>(FuzzEnv::Ctx{}, spec, n,
                                     /*clear_contexts=*/true,
                                     /*combine=*/true);
      },
      [](Alg& obj, int pid, const spec::CounterSpec::Op& op) {
        return obj.apply(pid, op).get();
      },
      [](Alg& obj, auto& recorder) {
        recorder.run(0, spec::CounterSpec::read(),
                     [&] { return obj.apply(0, spec::CounterSpec::read()).get(); });
      },
      [&](Alg& obj, const auto& hist, const std::vector<std::size_t>& witness,
          std::uint64_t seed) {
        const auto final_state = witness_final_state(spec, hist, witness);
        EXPECT_EQ(obj.head_state_encoded(), spec.encode_state(final_state))
            << "head diverges from the witness's final state at seed " << seed;
        EXPECT_FALSE(obj.head_has_response()) << "seed " << seed;
        EXPECT_EQ(obj.context_union(), 0u) << "seed " << seed;
        for (int pid = 0; pid < n; ++pid) {
          EXPECT_TRUE(obj.announce_is_bottom(pid))
              << "announce[" << pid << "] leaked at seed " << seed;
        }
        // Batch accounting: every non-read-only op in the history was
        // applied in exactly one installed batch; batches never exceed ops.
        std::uint64_t updates = 0;
        for (const auto& e : hist.entries()) {
          if (e.op.kind != spec::CounterSpec::Kind::kRead) ++updates;
        }
        EXPECT_EQ(obj.ops_combined(), updates) << "seed " << seed;
        EXPECT_LE(obj.batches_installed(), obj.ops_combined())
            << "seed " << seed;
        if (updates > 0) {
          EXPECT_GE(obj.batches_installed(), 1u) << "seed " << seed;
        }
      },
      aggressive);
}

TEST(FuzzRt, LeakyUniversalCounter_Linearizable) {
  // The baseline leaks history on purpose (version counter, result table) —
  // linearizability is its only contract under concurrency.
  const int n = 3;
  const spec::CounterSpec spec(1u << 20, 10);
  using Alg = algo::LeakyUniversalAlg<FuzzEnv, spec::CounterSpec>;
  fuzz_object_suite(
      "leaky-universal", spec, n, 0xa109,
      [&](int, util::Xoshiro256& rng) { return counter_script(5, rng); },
      [&] { return std::make_unique<Alg>(FuzzEnv::Ctx{}, spec, n); },
      [](Alg& obj, int pid, const spec::CounterSpec::Op& op) {
        return obj.apply(pid, op).get();
      },
      [](Alg&, auto&) {},  // lin-only: no image to pin
      [](Alg&, const auto&, const auto&, std::uint64_t) {});
}

// ------------------------------------------------- stalled-process rows
//
// The rt half of the crash model (docs/FAULTS.md): a thread parked forever
// at a primitive boundary (env::YieldInjector::arm_stall) is
// indistinguishable from a crashed one to every survivor. The progress
// watchdog in run_stall_threads converts "survivors stopped completing
// operations" into a failing test. The recorder only logs an op once its
// body returns, so a parked op is invisible to the history — these rows
// check object-level invariants at quiescence (inc-only scripts make the
// counter accounting exact) instead of linearizability.

TEST(StallRt, PositiveControl_SpinLockWatchdogCatchesStalledLockHolder) {
  // The lock-based counter under a stalled thread: whenever the stall point
  // lands inside the critical section (3 of the 4 boundaries of an inc),
  // the survivors spin on the dead thread's lock forever and the watchdog
  // must fire. Short explicit deadline: every firing iteration waits it out.
  bool fired = false;
  int engaged = 0;
  for (int iter = 0; iter < 8 && !fired; ++iter) {
    const std::uint64_t seed =
        util::hash_combine(0xc301, static_cast<std::uint64_t>(iter));
    testing::SpinLockCounterAlg<FuzzEnv> counter{FuzzEnv::Ctx{}};
    std::atomic<std::uint64_t> progress{0};
    const auto result = testing::run_stall_threads(
        /*num_threads=*/3, /*num_stalled=*/1, seed, env::YieldPolicy{},
        /*stall_window=*/4, progress,
        [&](int) {
          for (int i = 0; i < 2; ++i) {
            (void)counter.inc().get();
            progress.fetch_add(1, std::memory_order_release);
          }
        },
        [] {}, /*deadline_ms=*/400);
    fired = result.watchdog_fired;
    engaged += result.stalled_engaged;
  }
  EXPECT_TRUE(fired)
      << "no stall point ever wedged the lock-based counter — the progress "
         "watchdog's positive control is broken";
  EXPECT_GT(engaged, 0);
}

TEST(StallRt, UniversalCounter_SurvivorsCompleteWithStalledThread) {
  // Plain universal construction, one of three threads parked mid-inc: the
  // survivors must keep completing (lock-freedom does not depend on the
  // parked thread), and the quiescent counter accounts for every completed
  // inc plus AT MOST one helped parked inc.
  const int n = 3;
  const spec::CounterSpec spec(1u << 20, 10);
  using Alg = algo::UniversalAlg<FuzzEnv, spec::CounterSpec,
                                 algo::CasRllscAlg<FuzzEnv>>;
  const int iters = testing::rt_fuzz_iters(5);
  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed =
        util::hash_combine(0xc302, static_cast<std::uint64_t>(iter));
    Alg obj(FuzzEnv::Ctx{}, spec, n);
    std::atomic<std::uint64_t> progress{0};
    std::array<std::atomic<std::uint64_t>, 3> completed{};
    const auto result = testing::run_stall_threads(
        n, /*num_stalled=*/1, seed, env::YieldPolicy{},
        /*stall_window=*/8, progress,
        [&](int pid) {
          for (int i = 0; i < 5; ++i) {
            (void)obj.apply(pid, spec::CounterSpec::inc()).get();
            progress.fetch_add(1, std::memory_order_release);
            completed[static_cast<std::size_t>(pid)].fetch_add(
                1, std::memory_order_release);
          }
        },
        [&] {
          // Quiescence window: survivors done, the stalled thread still
          // parked — exactly the image a crash would have left.
          const std::uint64_t done =
              completed[0].load() + completed[1].load() + completed[2].load();
          const std::uint64_t head = obj.head_state_encoded();
          EXPECT_GE(head, 10 + done) << "seed " << seed;
          EXPECT_LE(head, 10 + done + 1)
              << "seed " << seed
              << ": more than the one parked inc unaccounted for";
        });
    if (result.watchdog_fired) {
      std::ostringstream note;
      note << "universal-counter stall row wedged at seed " << seed
           << " (stalled_engaged=" << result.stalled_engaged << ")";
      testing::dump_failing_trace("stall_universal_watchdog", note.str());
    }
    ASSERT_FALSE(result.watchdog_fired)
        << "survivors of the lock-free universal construction stopped "
           "completing with one thread parked, seed "
        << seed;
  }
}

TEST(StallRt, WaitFreeSim_WriterUnaffectedByStalledSlowPathReader) {
  // Wait-free simulation combinator with fast_limit = 0 (every read
  // announces + enqueues): thread 0 is a reader and gets parked somewhere
  // in its announce/enqueue/help window. The writer and the other reader
  // must finish regardless, and the quiescent inner image is the unit
  // vector of the final write — the parked read leaves no trace in the
  // bins, wherever it stopped.
  const std::uint32_t k = 6;
  const spec::RegisterSpec spec(k, 1);
  using Alg = algo::WaitFreeSimHiAlg<FuzzEnv, FuzzPacked>;
  const int iters = testing::rt_fuzz_iters(5);
  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed =
        util::hash_combine(0xc303, static_cast<std::uint64_t>(iter));
    Alg reg(FuzzEnv::Ctx{}, k, 1, /*num_processes=*/3, /*fast_limit=*/0);
    std::atomic<std::uint64_t> progress{0};
    const auto result = testing::run_stall_threads(
        /*num_threads=*/3, /*num_stalled=*/1, seed, env::YieldPolicy{},
        /*stall_window=*/12, progress,
        [&](int pid) {
          if (pid == 1) {
            for (std::uint32_t v = 2; v <= 6; ++v) {
              (void)reg.write(1, v).get();
              progress.fetch_add(1, std::memory_order_release);
            }
          } else {
            for (int i = 0; i < 4; ++i) {
              const std::uint32_t seen = reg.read(pid).get();
              EXPECT_GE(seen, 1u);
              EXPECT_LE(seen, 6u);
              progress.fetch_add(1, std::memory_order_release);
            }
          }
        },
        [&] {
          std::vector<std::uint8_t> expected(k, 0);
          expected[6 - 1] = 1;  // the writer's last completed write
          std::vector<std::uint8_t> inner;
          reg.encode_inner_memory(inner);
          EXPECT_EQ(inner, expected)
              << "parked slow-path reader left residue in the inner bins at "
                 "seed "
              << seed;
        });
    if (result.watchdog_fired) {
      std::ostringstream note;
      note << "wait-free-sim stall row wedged at seed " << seed
           << " (stalled_engaged=" << result.stalled_engaged << ")";
      testing::dump_failing_trace("stall_wfs_watchdog", note.str());
    }
    ASSERT_FALSE(result.watchdog_fired)
        << "wait-free survivors stopped completing with a parked reader, "
           "seed "
        << seed;
  }
}

TEST(StallRt, CombiningUniversal_StalledCombinerDocumentedBlockingWindow) {
  // Flat-combining mode, one thread parked: when the park lands while that
  // thread holds the combining record, survivors legitimately spin on it —
  // the documented blocking window (docs/FAULTS.md), the rt analogue of
  // CrashAudit.CombiningUniversalWinnerCrashedMidBatchBlocks. Outside that
  // window survivors must finish with exact counter accounting. The row
  // asserts both outcomes occur nowhere they shouldn't: a non-fired run
  // must balance the books, and across the seed sweep at least one run
  // must complete (the blocking window is a window, not the whole op).
  const int n = 3;
  const spec::CounterSpec spec(1u << 20, 10);
  using Alg = algo::UniversalAlg<FuzzEnv, spec::CounterSpec,
                                 algo::CasRllscAlg<FuzzEnv>>;
  int completed_runs = 0;
  const int iters = std::max(4, testing::rt_fuzz_iters(5));
  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed =
        util::hash_combine(0xc304, static_cast<std::uint64_t>(iter));
    Alg obj(FuzzEnv::Ctx{}, spec, n, /*clear_contexts=*/true,
            /*combine=*/true);
    std::atomic<std::uint64_t> progress{0};
    std::array<std::atomic<std::uint64_t>, 3> completed{};
    const auto result = testing::run_stall_threads(
        n, /*num_stalled=*/1, seed, env::YieldPolicy{},
        /*stall_window=*/10, progress,
        [&](int pid) {
          for (int i = 0; i < 5; ++i) {
            (void)obj.apply(pid, spec::CounterSpec::inc()).get();
            progress.fetch_add(1, std::memory_order_release);
            completed[static_cast<std::size_t>(pid)].fetch_add(
                1, std::memory_order_release);
          }
        },
        [&] {
          const std::uint64_t done =
              completed[0].load() + completed[1].load() + completed[2].load();
          const std::uint64_t head = obj.head_state_encoded();
          EXPECT_GE(head, 10 + done) << "seed " << seed;
          EXPECT_LE(head, 10 + done + 1) << "seed " << seed;
        },
        /*deadline_ms=*/2'000);
    if (!result.watchdog_fired) ++completed_runs;
  }
  EXPECT_GT(completed_runs, 0)
      << "every stall point blocked the combining universal — the blocking "
         "window should be the combining-record hold, not the entire op";
}

}  // namespace
}  // namespace hi
