// Real-hardware (std::atomic, real threads) tests for the rt library:
// RtRllsc (Algorithm 6), RtUniversal (Algorithm 5 / Theorem 32 composition),
// and the baselines. These complement the simulator tests: the simulator
// gives step-exact model checking, the rt tests give coverage under genuine
// hardware interleavings, plus linearizability checking of timestamped
// histories (conservative event ordering, hence sound).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "rt/baselines_rt.h"
#include "rt/rllsc_rt.h"
#include "rt/universal_rt.h"
#include "spec/counter_spec.h"
#include "spec/register_spec.h"
#include "spec/set_spec.h"
#include "util/rng.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using spec::CounterSpec;
using spec::RegisterSpec;
using spec::SetSpec;

TEST(RtRllsc, SingleThreadSemantics) {
  rt::RtRllsc cell(5);
  EXPECT_EQ(cell.ll(0), 5u);
  EXPECT_TRUE(cell.vl(0));
  EXPECT_FALSE(cell.vl(1));
  EXPECT_TRUE(cell.sc(0, 9));
  EXPECT_FALSE(cell.sc(0, 7)) << "SC without fresh LL must fail";
  EXPECT_EQ(cell.load(), 9u);
  EXPECT_EQ(cell.ll(1), 9u);
  EXPECT_TRUE(cell.rl(1));
  EXPECT_FALSE(cell.sc(1, 3));
  EXPECT_TRUE(cell.store(2));
  EXPECT_EQ(cell.load(), 2u);
  EXPECT_EQ(cell.snapshot().ctx, 0u);
}

TEST(RtRllsc, ConcurrentScsAreExclusivePerLink) {
  // Two threads race LL;SC on the same cell. Every successful SC installs a
  // unique token, so #successes == #distinct installed values observed.
  rt::RtRllsc cell(0);
  constexpr int kRounds = 20000;
  std::atomic<std::uint64_t> successes{0};
  std::atomic<std::uint64_t> token{1};

  auto worker = [&](int pid) {
    for (int i = 0; i < kRounds; ++i) {
      (void)cell.ll(pid);
      const std::uint64_t mine = token.fetch_add(1);
      if (cell.sc(pid, mine)) successes.fetch_add(1);
    }
  };
  std::thread t0(worker, 0), t1(worker, 1);
  t0.join();
  t1.join();

  EXPECT_GE(successes.load(), 1u);
  EXPECT_LE(successes.load(), 2u * kRounds);
  EXPECT_EQ(cell.snapshot().ctx, 0u)
      << "context must be empty once no LL is pending un-SC'd";
}

TEST(RtUniversal, LockFreedomReport) {
  const CounterSpec spec(1u << 24, 0);
  rt::RtUniversal<CounterSpec> object(spec, 4);
  // Informational: on x86-64 with cmpxchg16b this is lock-free; the
  // algorithms remain correct either way.
  (void)object.is_lock_free();
  SUCCEED();
}

TEST(RtUniversal, CounterSumsExactlyUnderContention) {
  const CounterSpec spec(1u << 24, 0);
  for (int threads : {2, 4, 8}) {
    rt::RtUniversal<CounterSpec> object(spec, threads);
    constexpr int kOpsEach = 4000;
    std::vector<std::thread> pool;
    std::vector<std::vector<std::uint32_t>> responses(threads);
    for (int pid = 0; pid < threads; ++pid) {
      pool.emplace_back([&, pid] {
        responses[pid].reserve(kOpsEach);
        for (int i = 0; i < kOpsEach; ++i) {
          responses[pid].push_back(object.apply(pid, CounterSpec::inc()));
        }
      });
    }
    for (auto& t : pool) t.join();

    // Final value: every inc applied exactly once.
    EXPECT_EQ(object.head_state_encoded(),
              static_cast<std::uint64_t>(threads) * kOpsEach);
    // Fetch-and-inc responses are globally distinct.
    std::set<std::uint32_t> all;
    for (const auto& r : responses) all.insert(r.begin(), r.end());
    EXPECT_EQ(all.size(), static_cast<std::size_t>(threads) * kOpsEach);
  }
}

TEST(RtUniversal, QuiescentMemoryIsCanonical) {
  // Theorem 32 at quiescence on hardware: announce ≡ ⊥, contexts empty,
  // head carries no response — and two completely different executions
  // reaching the same state have byte-identical memory images.
  const CounterSpec spec(1u << 24, 0);

  auto run = [&](int threads, int ops_each) {
    rt::RtUniversal<CounterSpec> object(spec, 8);  // fixed layout: 8 slots
    std::vector<std::thread> pool;
    for (int pid = 0; pid < threads; ++pid) {
      pool.emplace_back([&, pid] {
        for (int i = 0; i < ops_each; ++i) {
          (void)object.apply(pid, CounterSpec::inc());
        }
      });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(object.context_union(), 0u);
    EXPECT_FALSE(object.head_has_response());
    for (int pid = 0; pid < 8; ++pid) {
      EXPECT_TRUE(object.announce_is_bottom(pid));
    }
    return object.memory_image();
  };

  const auto img_a = run(2, 6000);   // 12000 incs by 2 threads
  const auto img_b = run(8, 1500);   // 12000 incs by 8 threads
  const auto img_c = run(4, 3000);   // 12000 incs by 4 threads
  EXPECT_EQ(img_a, img_b);
  EXPECT_EQ(img_b, img_c);
}

TEST(RtUniversal, TimestampedHistoryLinearizes) {
  const RegisterSpec spec(8, 3);
  const int threads = 4;
  rt::RtUniversal<RegisterSpec> object(spec, threads);

  std::atomic<std::uint64_t> clock{0};
  struct Record {
    RegisterSpec::Op op;
    std::uint32_t resp;
    std::uint64_t invoked, responded;
  };
  std::vector<std::vector<Record>> logs(threads);

  std::vector<std::thread> pool;
  for (int pid = 0; pid < threads; ++pid) {
    pool.emplace_back([&, pid] {
      util::Xoshiro256 rng(pid + 1);
      for (int i = 0; i < 50; ++i) {
        Record rec;
        rec.op = rng.chance(1, 2)
                     ? RegisterSpec::read()
                     : RegisterSpec::write(
                           static_cast<std::uint32_t>(rng.next_in(1, 8)));
        rec.invoked = clock.fetch_add(1);
        rec.resp = object.apply(pid, rec.op);
        rec.responded = clock.fetch_add(1);
        logs[pid].push_back(rec);
      }
    });
  }
  for (auto& t : pool) t.join();

  verify::History<RegisterSpec::Op, RegisterSpec::Resp> history;
  // Rebuild with global timestamps: insert all events sorted by time.
  struct Ev {
    std::uint64_t time;
    int pid;
    std::size_t idx;
    bool invoke;
  };
  std::vector<Ev> events;
  for (int pid = 0; pid < threads; ++pid) {
    for (std::size_t i = 0; i < logs[pid].size(); ++i) {
      events.push_back({logs[pid][i].invoked, pid, i, true});
      events.push_back({logs[pid][i].responded, pid, i, false});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Ev& a, const Ev& b) { return a.time < b.time; });
  std::vector<std::vector<std::size_t>> hist_index(threads);
  for (int pid = 0; pid < threads; ++pid) hist_index[pid].resize(50);
  for (const Ev& ev : events) {
    if (ev.invoke) {
      hist_index[ev.pid][ev.idx] =
          history.invoke(ev.pid, logs[ev.pid][ev.idx].op);
    } else {
      history.respond(hist_index[ev.pid][ev.idx], logs[ev.pid][ev.idx].resp);
    }
  }

  const auto final_state = spec.decode_state(object.head_state_encoded());
  const auto lin =
      verify::LinearizabilityChecker<RegisterSpec>(spec).check(history,
                                                               final_state);
  EXPECT_TRUE(lin.ok());
}

TEST(RtUniversal, SetMembershipConsistent) {
  const SetSpec spec(16);
  const int threads = 4;
  rt::RtUniversal<SetSpec> object(spec, threads);
  std::vector<std::thread> pool;
  // Thread pid owns elements where v % threads == pid: inserts then removes
  // half of them; final membership is exactly the kept half of each range.
  for (int pid = 0; pid < threads; ++pid) {
    pool.emplace_back([&, pid] {
      for (std::uint32_t v = 1; v <= 16; ++v) {
        if (v % threads != static_cast<std::uint32_t>(pid)) continue;
        (void)object.apply(pid, SetSpec::insert(v));
        if (v % 2 == 0) (void)object.apply(pid, SetSpec::remove(v));
      }
    });
  }
  for (auto& t : pool) t.join();
  std::uint64_t expected = 0;
  for (std::uint32_t v = 1; v <= 16; ++v) {
    if (v % 2 == 1) expected |= std::uint64_t{1} << (v - 1);
  }
  EXPECT_EQ(object.head_state_encoded(), expected);
}

TEST(RtBaselines, LockAndCasLoopCountersSum) {
  const CounterSpec spec(1u << 24, 0);
  {
    rt::RtLockObject<CounterSpec> object(spec);
    std::vector<std::thread> pool;
    for (int pid = 0; pid < 4; ++pid) {
      pool.emplace_back([&, pid] {
        for (int i = 0; i < 5000; ++i) (void)object.apply(pid, CounterSpec::inc());
      });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(object.apply(0, CounterSpec::read()), 20000u);
  }
  {
    rt::RtCasLoopObject<CounterSpec> object(spec);
    std::vector<std::thread> pool;
    for (int pid = 0; pid < 4; ++pid) {
      pool.emplace_back([&, pid] {
        for (int i = 0; i < 5000; ++i) (void)object.apply(pid, CounterSpec::inc());
      });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(object.apply(0, CounterSpec::read()), 20000u);
  }
}

TEST(RtBaselines, LeakyUniversalCountsOpsAndSums) {
  const CounterSpec spec(1u << 24, 0);
  const int threads = 4;
  rt::RtLeakyUniversal<CounterSpec> object(spec, threads);
  constexpr int kOpsEach = 3000;
  std::vector<std::thread> pool;
  std::vector<std::vector<std::uint32_t>> responses(threads);
  for (int pid = 0; pid < threads; ++pid) {
    pool.emplace_back([&, pid] {
      for (int i = 0; i < kOpsEach; ++i) {
        responses[pid].push_back(object.apply(pid, CounterSpec::inc()));
      }
    });
  }
  for (auto& t : pool) t.join();

  EXPECT_EQ(object.head_state_encoded(),
            static_cast<std::uint64_t>(threads) * kOpsEach);
  std::set<std::uint32_t> all;
  for (const auto& r : responses) all.insert(r.begin(), r.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(threads) * kOpsEach);
  // The leak, quantified: the version counter reveals the operation count.
  EXPECT_EQ(object.version(), static_cast<std::uint64_t>(threads) * kOpsEach);
}

}  // namespace
}  // namespace hi
