// Unit tests for the sequential specifications (Q, q0, O, R, Δ) — §2 of the
// paper — including the class-C_t hooks (Definition 13) and the queue's
// representative-state machinery (§5.4).
#include <gtest/gtest.h>

#include <set>

#include "spec/cas_spec.h"
#include "spec/counter_spec.h"
#include "spec/max_register_spec.h"
#include "spec/queue_spec.h"
#include "spec/register_spec.h"
#include "spec/set_spec.h"
#include "spec/spec.h"
#include "spec/stack_spec.h"

namespace hi::spec {
namespace {

static_assert(SequentialSpec<RegisterSpec>);
static_assert(SequentialSpec<CounterSpec>);
static_assert(SequentialSpec<QueueSpec>);
static_assert(SequentialSpec<SetSpec>);
static_assert(SequentialSpec<MaxRegisterSpec>);
static_assert(SequentialSpec<CasSpec>);
static_assert(SequentialSpec<StackSpec>);
static_assert(EnumerableSpec<RegisterSpec>);
static_assert(EnumerableSpec<QueueSpec>);
static_assert(StronglyConnectedSpec<RegisterSpec>);
static_assert(StronglyConnectedSpec<CasSpec>);

TEST(RegisterSpec, ReadReturnsState) {
  RegisterSpec spec(5, 3);
  EXPECT_EQ(spec.initial_state(), 3u);
  auto [next, resp] = spec.apply(3, RegisterSpec::read());
  EXPECT_EQ(next, 3u);
  EXPECT_EQ(resp, 3u);
}

TEST(RegisterSpec, WriteMovesAnywhere) {
  RegisterSpec spec(5);
  for (std::uint32_t from = 1; from <= 5; ++from) {
    for (std::uint32_t to = 1; to <= 5; ++to) {
      auto [next, resp] = spec.apply(from, RegisterSpec::write(to));
      EXPECT_EQ(next, to);
    }
  }
}

TEST(RegisterSpec, ClassCtInterface) {
  RegisterSpec spec(4);
  EXPECT_TRUE(spec.is_read_only(spec.read_op()));
  auto [next, resp] = spec.apply(2, spec.change_op(2, 4));
  EXPECT_EQ(next, 4u);
}

TEST(RegisterSpec, OpEncodingRoundTrip) {
  RegisterSpec spec(7);
  EXPECT_EQ(spec.decode_op(spec.encode_op(RegisterSpec::read())),
            RegisterSpec::read());
  for (std::uint32_t v = 1; v <= 7; ++v) {
    EXPECT_EQ(spec.decode_op(spec.encode_op(RegisterSpec::write(v))),
              RegisterSpec::write(v));
  }
}

TEST(RegisterSpec, EnumerateStates) {
  RegisterSpec spec(6);
  EXPECT_EQ(spec.enumerate_states().size(), 6u);
}

TEST(CounterSpec, IncDecSaturate) {
  CounterSpec spec(3, 0);
  auto [one, r0] = spec.apply(0, CounterSpec::inc());
  EXPECT_EQ(one, 1u);
  EXPECT_EQ(r0, 0u);  // fetch-and-inc reports the old value
  auto [zero, r1] = spec.apply(0, CounterSpec::dec());
  EXPECT_EQ(zero, 0u);  // saturates at 0
  auto [three, r2] = spec.apply(3, CounterSpec::inc());
  EXPECT_EQ(three, 3u);  // saturates at max
}

TEST(CounterSpec, ReadIsReadOnly) {
  CounterSpec spec;
  EXPECT_TRUE(spec.is_read_only(CounterSpec::read()));
  EXPECT_FALSE(spec.is_read_only(CounterSpec::inc()));
  EXPECT_FALSE(spec.is_read_only(CounterSpec::dec()));
}

TEST(QueueSpec, FifoOrder) {
  QueueSpec spec(5);
  QueueSpec::State q = spec.initial_state();
  q = spec.apply(q, QueueSpec::enqueue(3)).first;
  q = spec.apply(q, QueueSpec::enqueue(1)).first;
  auto [q2, front] = spec.apply(q, QueueSpec::dequeue());
  EXPECT_EQ(front, 3u);
  auto [q3, front2] = spec.apply(q2, QueueSpec::dequeue());
  EXPECT_EQ(front2, 1u);
  EXPECT_TRUE(q3.empty());
}

TEST(QueueSpec, PeekAndEmptyResponses) {
  QueueSpec spec(5);
  const QueueSpec::State empty = spec.initial_state();
  EXPECT_EQ(spec.apply(empty, QueueSpec::peek()).second, QueueSpec::kEmptyResp);
  EXPECT_EQ(spec.apply(empty, QueueSpec::dequeue()).second,
            QueueSpec::kEmptyResp);
  const auto one = spec.apply(empty, QueueSpec::enqueue(4)).first;
  EXPECT_EQ(spec.apply(one, QueueSpec::peek()).second, 4u);
}

TEST(QueueSpec, CapacityBound) {
  QueueSpec spec(3, 2);
  QueueSpec::State q = spec.initial_state();
  q = spec.apply(q, QueueSpec::enqueue(1)).first;
  q = spec.apply(q, QueueSpec::enqueue(2)).first;
  q = spec.apply(q, QueueSpec::enqueue(3)).first;  // dropped: full
  EXPECT_EQ(q.size(), 2u);
}

TEST(QueueSpec, StateEncodingInjective) {
  QueueSpec spec(4, 3);
  std::set<std::uint64_t> encodings;
  const auto states = spec.enumerate_states();
  for (const auto& state : states) encodings.insert(spec.encode_state(state));
  EXPECT_EQ(encodings.size(), states.size());
  // 1 + 4 + 16 + 64 states for domain 4, capacity 3.
  EXPECT_EQ(states.size(), 85u);
}

TEST(QueueSpec, RepresentativeStatesAndChangeSeq) {
  // §5.4: S(i1, i2) moves representative q_{i1} to q_{i2}, and Peek along the
  // way only ever returns r_{i1} or r_{i2}.
  QueueSpec spec(4);
  for (std::uint32_t i1 = 0; i1 <= 4; ++i1) {
    for (std::uint32_t i2 = 0; i2 <= 4; ++i2) {
      if (i1 == i2) continue;
      QueueSpec::State state = spec.representative(i1);
      for (const auto& op : spec.change_seq(i1, i2)) {
        const auto peek_before = spec.apply(state, QueueSpec::peek()).second;
        EXPECT_TRUE(peek_before == i1 || peek_before == i2);
        state = spec.apply(state, op).first;
      }
      EXPECT_EQ(state, spec.representative(i2));
      EXPECT_EQ(spec.apply(state, QueueSpec::peek()).second, i2);
    }
  }
}

TEST(SetSpec, MembershipAndConstantUpdateResponses) {
  SetSpec spec(8);
  SetSpec::State s = spec.initial_state();
  auto [s1, r1] = spec.apply(s, SetSpec::insert(3));
  EXPECT_TRUE(r1);
  auto [s2, r2] = spec.apply(s1, SetSpec::insert(3));
  EXPECT_TRUE(r2);  // constant ack, even when already present
  EXPECT_TRUE(spec.apply(s2, SetSpec::lookup(3)).second);
  EXPECT_FALSE(spec.apply(s2, SetSpec::lookup(4)).second);
  auto [s3, r3] = spec.apply(s2, SetSpec::remove(3));
  EXPECT_TRUE(r3);
  EXPECT_FALSE(spec.apply(s3, SetSpec::lookup(3)).second);
}

TEST(SetSpec, StateIsBitmask) {
  SetSpec spec(8);
  SetSpec::State s = spec.initial_state();
  s = spec.apply(s, SetSpec::insert(1)).first;
  s = spec.apply(s, SetSpec::insert(8)).first;
  EXPECT_EQ(spec.encode_state(s), 0b10000001u);
}

TEST(MaxRegisterSpec, Monotone) {
  MaxRegisterSpec spec(10);
  auto [s1, _] = spec.apply(5, MaxRegisterSpec::write_max(3));
  EXPECT_EQ(s1, 5u);  // smaller write is absorbed
  auto [s2, _2] = spec.apply(5, MaxRegisterSpec::write_max(8));
  EXPECT_EQ(s2, 8u);
  EXPECT_EQ(spec.apply(8, MaxRegisterSpec::read_max()).second, 8u);
}

TEST(CasSpec, SemanticsAndClassCt) {
  CasSpec spec(6, 2);
  auto [s1, r1] = spec.apply(2, CasSpec::cas(2, 5));
  EXPECT_EQ(s1, 5u);
  EXPECT_TRUE(r1.success);
  auto [s2, r2] = spec.apply(5, CasSpec::cas(2, 3));
  EXPECT_EQ(s2, 5u);
  EXPECT_FALSE(r2.success);
  auto [s3, r3] = spec.apply(5, spec.change_op(5, 1));
  EXPECT_EQ(s3, 1u);
}

TEST(CasSpec, EncodingRoundTrip) {
  CasSpec spec(100);
  const auto op = CasSpec::cas(17, 99);
  EXPECT_EQ(spec.decode_op(spec.encode_op(op)), op);
  const CasSpec::Resp resp{true, 42};
  EXPECT_EQ(spec.decode_resp(spec.encode_resp(resp)), resp);
}

TEST(StackSpec, LifoOrder) {
  StackSpec spec(5);
  StackSpec::State s = spec.initial_state();
  s = spec.apply(s, StackSpec::push(3)).first;
  s = spec.apply(s, StackSpec::push(1)).first;
  EXPECT_EQ(spec.apply(s, StackSpec::top()).second, 1u);
  auto [s2, popped] = spec.apply(s, StackSpec::pop());
  EXPECT_EQ(popped, 1u);
  EXPECT_EQ(spec.apply(s2, StackSpec::pop()).second, 3u);
}

TEST(StackSpec, QueueAndStackEncodingsDifferOnSameOps) {
  // Same insertion order, different abstract objects: the canonical state
  // encodings must reflect the container semantics, not the op history.
  QueueSpec qspec(5);
  StackSpec sspec(5);
  QueueSpec::State q = qspec.initial_state();
  StackSpec::State s = sspec.initial_state();
  q = qspec.apply(q, QueueSpec::enqueue(1)).first;
  q = qspec.apply(q, QueueSpec::enqueue(2)).first;
  s = sspec.apply(s, StackSpec::push(1)).first;
  s = sspec.apply(s, StackSpec::push(2)).first;
  // Remove one element from each; queue drops 1, stack drops 2.
  EXPECT_EQ(qspec.apply(q, QueueSpec::dequeue()).second, 1u);
  EXPECT_EQ(sspec.apply(s, StackSpec::pop()).second, 2u);
}

TEST(ReplayHelper, AppliesSequence) {
  RegisterSpec spec(5);
  const auto final_state = replay(
      spec, {RegisterSpec::write(4), RegisterSpec::read(),
             RegisterSpec::write(2)});
  EXPECT_EQ(final_state, 2u);
}

}  // namespace
}  // namespace hi::spec
