// R-LLSC microbenchmarks (Algorithm 6 on hardware): the per-primitive cost
// of the context-aware releasable LL/SC operations against the raw 16-byte
// CAS they are built from, solo and under contention. This quantifies the
// substrate cost underneath Algorithm 5 — each universal-object operation is
// a constant number of these.
//
// emit_bench_json() writes BENCH_rllsc.json with build metadata and the
// per-result allocs_per_op field (0.0 in steady state; docs/PERF.md).
#include <benchmark/benchmark.h>

#include "rt/atomic128.h"
#include "rt/rllsc_rt.h"
#include "util/bench_json.h"

namespace hi {
namespace {

void BM_RawCas128(benchmark::State& state) {
  static rt::Atomic128* cell = nullptr;
  if (state.thread_index() == 0) cell = new rt::Atomic128(rt::Word128{0, 0});
  std::uint64_t local = 0;
  for (auto _ : state) {
    rt::Word128 cur = cell->load();
    rt::Word128 desired{cur.value + 1, 0};
    benchmark::DoNotOptimize(cell->compare_exchange(cur, desired));
    ++local;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete cell;
    cell = nullptr;
  }
}
BENCHMARK(BM_RawCas128)
    ->Name("raw_cas128")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_LlScPair(benchmark::State& state) {
  static rt::RtRllsc* cell = nullptr;
  if (state.thread_index() == 0) cell = new rt::RtRllsc(0);
  const int pid = state.thread_index();
  for (auto _ : state) {
    const std::uint64_t seen = cell->ll(pid);
    benchmark::DoNotOptimize(cell->sc(pid, seen + 1));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete cell;
    cell = nullptr;
  }
}
BENCHMARK(BM_LlScPair)
    ->Name("ll_sc_pair")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_LlRlPair(benchmark::State& state) {
  // LL followed by RL — the clearing pattern Algorithm 5's red lines add.
  static rt::RtRllsc* cell = nullptr;
  if (state.thread_index() == 0) cell = new rt::RtRllsc(0);
  const int pid = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell->ll(pid));
    benchmark::DoNotOptimize(cell->rl(pid));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete cell;
    cell = nullptr;
  }
}
BENCHMARK(BM_LlRlPair)
    ->Name("ll_rl_pair")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_Load(benchmark::State& state) {
  static rt::RtRllsc* cell = nullptr;
  if (state.thread_index() == 0) cell = new rt::RtRllsc(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell->load());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete cell;
    cell = nullptr;
  }
}
BENCHMARK(BM_Load)->Name("load")->Threads(1)->Threads(8)->UseRealTime();

void BM_Store(benchmark::State& state) {
  static rt::RtRllsc* cell = nullptr;
  if (state.thread_index() == 0) cell = new rt::RtRllsc(0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell->store(++v));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete cell;
    cell = nullptr;
  }
}
BENCHMARK(BM_Store)->Name("store")->Threads(1)->Threads(8)->UseRealTime();

void BM_Vl(benchmark::State& state) {
  static rt::RtRllsc* cell = nullptr;
  if (state.thread_index() == 0) {
    cell = new rt::RtRllsc(0);
    cell->ll(0);
  }
  const int pid = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell->vl(pid));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete cell;
    cell = nullptr;
  }
}
BENCHMARK(BM_Vl)->Name("vl")->Threads(1)->Threads(8)->UseRealTime();

/// Machine-readable results (BENCH_rllsc.json) for cross-PR tracking.
void emit_bench_json() {
  util::BenchReport report("rllsc");
  // The whole object is one padded 16-byte atomic word.
  const std::size_t object_bytes = rt::RtRllsc(0).memory_bytes();
  const auto add = [&report, object_bytes](util::BenchResult result) {
    result.bytes_per_object = object_bytes;
    report.add(std::move(result));
  };
  for (const int threads : {1, 2, 4}) {
    rt::RtRllsc cell(0);
    add(util::measure_throughput(
        "ll_sc_pair", threads, 50'000, [&cell](int tid, std::size_t) {
          const std::uint64_t seen = cell.ll(tid);
          benchmark::DoNotOptimize(cell.sc(tid, seen + 1));
        }));
  }
  {
    rt::RtRllsc cell(0);
    add(util::measure_throughput(
        "ll_rl_pair", 2, 50'000, [&cell](int tid, std::size_t) {
          benchmark::DoNotOptimize(cell.ll(tid));
          benchmark::DoNotOptimize(cell.rl(tid));
        }));
  }
  {
    rt::RtRllsc cell(7);
    add(util::measure_throughput(
        "load", 1, 200'000, [&cell](int, std::size_t) {
          benchmark::DoNotOptimize(cell.load());
        }));
    add(util::measure_throughput(
        "store", 1, 200'000, [&cell](int, std::size_t i) {
          benchmark::DoNotOptimize(cell.store(i));
        }));
  }
  report.write();
}

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::emit_bench_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
