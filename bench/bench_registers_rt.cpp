// Register algorithms on hardware (Table 1's rows as performance): write and
// read costs of Algorithms 1, 2 and 4, the price of upward clearing (Alg 2
// vs Alg 1) and of the helping protocol (Alg 4), plus the progress shape: a
// read's TryRead-attempt distribution under a hot writer — Algorithm 2's
// tail is unbounded (lock-free), Algorithm 4's is exactly ≤ 2 attempts
// before falling back to B (wait-free).
//
// emit_bench_json() writes BENCH_registers.json with build metadata and the
// per-result allocs_per_op field (0.0 in steady state — the frame arena
// absorbs every coroutine frame; see docs/PERF.md for the schema and gate).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "rt/registers_rt.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hi {
namespace {

constexpr std::uint32_t kValues = 16;

template <typename Reg>
void BM_SoloWrite(benchmark::State& state) {
  Reg reg(kValues);
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    reg.write(static_cast<std::uint32_t>(rng.next_in(1, kValues)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoloWrite<rt::RtVidyasankarRegister>)->Name("alg1/solo_write");
BENCHMARK(BM_SoloWrite<rt::RtLockFreeHiRegister>)->Name("alg2/solo_write");
BENCHMARK(BM_SoloWrite<rt::RtWaitFreeHiRegister>)->Name("alg4/solo_write");

void BM_SoloReadAlg1(benchmark::State& state) {
  rt::RtVidyasankarRegister reg(kValues, kValues / 2);
  for (auto _ : state) benchmark::DoNotOptimize(reg.read());
  state.SetItemsProcessed(state.iterations());
}
void BM_SoloReadAlg2(benchmark::State& state) {
  rt::RtLockFreeHiRegister reg(kValues, kValues / 2);
  for (auto _ : state) benchmark::DoNotOptimize(reg.read());
  state.SetItemsProcessed(state.iterations());
}
void BM_SoloReadAlg4(benchmark::State& state) {
  rt::RtWaitFreeHiRegister reg(kValues, kValues / 2);
  for (auto _ : state) benchmark::DoNotOptimize(reg.read());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoloReadAlg1)->Name("alg1/solo_read");
BENCHMARK(BM_SoloReadAlg2)->Name("alg2/solo_read");
BENCHMARK(BM_SoloReadAlg4)->Name("alg4/solo_read");

// Contended write throughput: writer thread with a concurrent reader.
template <typename Reg>
void contended(benchmark::State& state) {
  static Reg* reg = nullptr;
  static std::atomic<bool>* stop = nullptr;
  static std::thread* reader = nullptr;
  if (state.thread_index() == 0) {
    reg = new Reg(kValues);
    stop = new std::atomic<bool>{false};
    reader = new std::thread([&] {
      while (!stop->load(std::memory_order_acquire)) {
        if constexpr (requires { reg->read(std::uint64_t{1}); }) {
          benchmark::DoNotOptimize(reg->read(1000));
        } else {
          benchmark::DoNotOptimize(reg->read());
        }
      }
    });
  }
  util::Xoshiro256 rng(2);
  for (auto _ : state) {
    reg->write(static_cast<std::uint32_t>(rng.next_in(1, kValues)));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    stop->store(true, std::memory_order_release);
    reader->join();
    delete reader;
    delete stop;
    delete reg;
    reg = nullptr;
  }
}
BENCHMARK(contended<rt::RtVidyasankarRegister>)->Name("alg1/contended_write");
BENCHMARK(contended<rt::RtLockFreeHiRegister>)->Name("alg2/contended_write");
BENCHMARK(contended<rt::RtWaitFreeHiRegister>)->Name("alg4/contended_write");

// ---- Progress-shape section: read attempts under a hot writer ----

void print_attempt_distribution() {
  // The padded-per-bit instantiation: with the packed layout and K ≤ 64 a
  // TryRead is a single full-array word snapshot and can never fail, so the
  // lock-free long tail only shows on the per-bit layout (or packed K > 64).
  std::printf(
      "=== read progress under a hot writer (K=%u, padded layout) ===\n"
      "Algorithm 2: TryRead attempts until success (lock-free: long tail);\n"
      "Algorithm 4: reads always complete (wait-free, helped via B).\n\n",
      kValues);
  {
    rt::RtLockFreeHiRegisterPadded reg(kValues);
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      util::Xoshiro256 rng(3);
      while (!stop.load(std::memory_order_acquire)) {
        reg.write(static_cast<std::uint32_t>(rng.next_in(1, kValues)));
      }
    });
    util::Samples attempts;
    std::uint64_t failures = 0;
    for (int i = 0; i < 20000; ++i) {
      std::uint64_t tries = 0;
      for (;;) {
        ++tries;
        if (reg.read(1).has_value()) break;
        if (tries >= 10000) {  // declare starved for reporting purposes
          ++failures;
          break;
        }
      }
      attempts.add(tries);
    }
    stop.store(true, std::memory_order_release);
    writer.join();
    std::printf(
        "alg2: attempts p50=%llu p99=%llu max=%llu; reads giving up after "
        "10000 attempts: %llu\n",
        static_cast<unsigned long long>(attempts.percentile(0.5)),
        static_cast<unsigned long long>(attempts.percentile(0.99)),
        static_cast<unsigned long long>(attempts.max()),
        static_cast<unsigned long long>(failures));
  }
  {
    rt::RtWaitFreeHiRegister reg(kValues);
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      util::Xoshiro256 rng(4);
      while (!stop.load(std::memory_order_acquire)) {
        reg.write(static_cast<std::uint32_t>(rng.next_in(1, kValues)));
      }
    });
    util::Samples latency;
    for (int i = 0; i < 20000; ++i) {
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(reg.read());
      const auto end = std::chrono::steady_clock::now();
      latency.add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count()));
    }
    stop.store(true, std::memory_order_release);
    writer.join();
    std::printf(
        "alg4: every read completed; latency ns p50=%llu p99=%llu max=%llu\n\n",
        static_cast<unsigned long long>(latency.percentile(0.5)),
        static_cast<unsigned long long>(latency.percentile(0.99)),
        static_cast<unsigned long long>(latency.max()));
  }
}

/// Machine-readable results (BENCH_registers.json) for cross-PR tracking.
/// The K-suffixed rows are the large-domain packed-vs-padded comparison:
/// packed scans are O(K/64) word loads over contiguous lines, padded scans
/// O(K) loads over one padded cache line per bin — at K=1024 that is 128 B
/// vs 64 KiB of register (bytes_per_object) and the solo-read gap the
/// ISSUE's ≥5× acceptance row measures (both layouts benched in this run).
void emit_bench_json() {
  util::BenchReport report("registers");
  const auto solo = [&report](const char* name, auto make_reg,
                              std::uint32_t k, bool reads,
                              std::size_t ops = 100'000) {
    auto reg = make_reg();
    util::Xoshiro256 rng(9);
    auto result = util::measure_throughput(
        name, 1, ops, [&](int, std::size_t) {
          if (reads) {
            if constexpr (requires { reg.read(std::uint64_t{1}); }) {
              benchmark::DoNotOptimize(reg.read(/*max_attempts=*/1));
            } else {
              benchmark::DoNotOptimize(reg.read());
            }
          } else {
            reg.write(static_cast<std::uint32_t>(rng.next_in(1, k)));
          }
        });
    result.bytes_per_object = reg.memory_bytes();
    report.add(std::move(result));
  };
  solo("alg1/solo_write",
       [] { return rt::RtVidyasankarRegister(kValues, kValues / 2); },
       kValues, false);
  solo("alg2/solo_write",
       [] { return rt::RtLockFreeHiRegister(kValues, kValues / 2); },
       kValues, false);
  solo("alg4/solo_write",
       [] { return rt::RtWaitFreeHiRegister(kValues, kValues / 2); },
       kValues, false);
  solo("alg1/solo_read",
       [] { return rt::RtVidyasankarRegister(kValues, kValues / 2); },
       kValues, true);
  solo("alg4/solo_read",
       [] { return rt::RtWaitFreeHiRegister(kValues, kValues / 2); },
       kValues, true);

  // ---- large-domain scaling: packed rows at K ∈ {16, 256, 1024}, plus
  // the padded-per-bit equivalents at K=1024 measured in the SAME run so
  // the packed/padded ratio is an apples-to-apples same-binary number ----
  for (const std::uint32_t k : {16u, 256u, 1024u}) {
    const std::string suffix = "/K" + std::to_string(k);
    solo(("alg2/solo_read" + suffix).c_str(),
         [k] { return rt::RtLockFreeHiRegister(k, k / 2); }, k, true,
         k >= 1024 ? 50'000 : 100'000);
    solo(("alg2/solo_write" + suffix).c_str(),
         [k] { return rt::RtLockFreeHiRegister(k, k / 2); }, k, false,
         k >= 1024 ? 50'000 : 100'000);
  }
  solo("alg2_padded/solo_read/K1024",
       [] { return rt::RtLockFreeHiRegisterPadded(1024, 512); }, 1024, true,
       20'000);
  solo("alg2_padded/solo_write/K1024",
       [] { return rt::RtLockFreeHiRegisterPadded(1024, 512); }, 1024, false,
       20'000);

  {
    // SWSR under genuine concurrency: tid 0 writes, tid 1 reads (Alg 4's
    // wait-free reader never blocks, so both sides are unconditional).
    rt::RtWaitFreeHiRegister reg(kValues);
    util::Xoshiro256 rng(10);
    auto result = util::measure_throughput(
        "alg4/swsr_mixed", 2, 50'000, [&](int tid, std::size_t) {
          if (tid == 0) {
            reg.write(static_cast<std::uint32_t>(rng.next_in(1, kValues)));
          } else {
            benchmark::DoNotOptimize(reg.read());
          }
        });
    result.bytes_per_object = reg.memory_bytes();
    report.add(std::move(result));
  }
  report.write();
}

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::emit_bench_json();
  hi::print_attempt_distribution();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
