// §5.1 max register on hardware (RtMaxRegister, the RtEnv instantiation of
// algo/max_register.h): per-operation cost of the monotone-write register.
// ReadMax costs O(m) binary-register reads (m = current maximum), WriteMax
// is O(v) on a ramp and ZERO atomics when absorbed — the absorb fast-path is
// the HI-relevant behaviour (an absorbed write may leave no footprint), and
// the benchmark quantifies that it is also the cheap path.
//
// emit_bench_json() writes BENCH_max_register.json with build metadata and
// the per-result allocs_per_op field (0.0 in steady state; docs/PERF.md).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "rt/max_register_rt.h"
#include "util/bench_json.h"

namespace hi {
namespace {

constexpr std::uint32_t kValues = 64;

void BM_ReadMax(benchmark::State& state) {
  // Reader throughput at a fixed maximum (mid-range scan length).
  static rt::RtMaxRegister* reg = nullptr;
  if (state.thread_index() == 0) {
    reg = new rt::RtMaxRegister(kValues, 1, /*writer_pid=*/0, /*reader_pid=*/1);
    reg->write_max(kValues / 2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg->read_max());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete reg;
    reg = nullptr;
  }
}
BENCHMARK(BM_ReadMax)->Name("read_max")->Threads(1)->UseRealTime();

void BM_AbsorbedWrite(benchmark::State& state) {
  // The maximum is already K: every WriteMax(1) is absorbed writer-locally
  // with zero shared-memory accesses.
  static rt::RtMaxRegister* reg = nullptr;
  if (state.thread_index() == 0) {
    reg = new rt::RtMaxRegister(kValues);
    reg->write_max(kValues);
  }
  for (auto _ : state) {
    reg->write_max(1);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete reg;
    reg = nullptr;
  }
}
BENCHMARK(BM_AbsorbedWrite)->Name("absorbed_write")->Threads(1)->UseRealTime();

/// Machine-readable results (BENCH_max_register.json) for cross-PR
/// tracking. The read_max/K* rows scale the domain (packed layout, the
/// default): ReadMax at maximum m = K/2 costs O(m/64) word loads, so the
/// packed rows stay nearly flat in K where the padded comparison row
/// (read_max_padded/K1024, same run) pays one padded cache line per bin.
void emit_bench_json() {
  util::BenchReport report("max_register");
  const auto read_row = [&report](const char* name, auto make_reg,
                                  std::uint32_t k, std::size_t ops) {
    auto reg = make_reg();
    reg.write_max(k / 2);
    auto result = util::measure_throughput(
        name, 1, ops,
        [&reg](int, std::size_t) { benchmark::DoNotOptimize(reg.read_max()); });
    result.bytes_per_object = reg.memory_bytes();
    report.add(std::move(result));
  };
  read_row("read_max", [] { return rt::RtMaxRegister(kValues, 1); }, kValues,
           200'000);
  for (const std::uint32_t k : {16u, 256u, 1024u}) {
    const std::string name = "read_max/K" + std::to_string(k);
    read_row(name.c_str(), [k] { return rt::RtMaxRegister(k, 1); }, k,
             k >= 1024 ? 50'000 : 200'000);
  }
  read_row("read_max_padded/K1024",
           [] { return rt::RtMaxRegisterPadded(1024, 1); }, 1024, 20'000);
  {
    rt::RtMaxRegister reg(kValues);
    reg.write_max(kValues);
    auto result = util::measure_throughput(
        "absorbed_write", 1, 200'000,
        [&reg](int, std::size_t) { reg.write_max(1); });
    result.bytes_per_object = reg.memory_bytes();
    report.add(std::move(result));
  }
  {
    // SWSR under contention: thread 0 writes a slowly rising maximum,
    // thread 1 reads concurrently.
    rt::RtMaxRegister reg(kValues, 1, /*writer_pid=*/0, /*reader_pid=*/1);
    auto result = util::measure_throughput(
        "swsr_mixed", 2, 100'000, [&reg](int tid, std::size_t i) {
          if (tid == 0) {
            reg.write_max(static_cast<std::uint32_t>(i % kValues) + 1);
          } else {
            benchmark::DoNotOptimize(reg.read_max());
          }
        });
    result.bytes_per_object = reg.memory_bytes();
    report.add(std::move(result));
  }
  report.write();
}

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::emit_bench_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
