// Experiment E14 (universal construction, hardware) — throughput and latency
// of Algorithm 5's rt implementation against three comparators on the same
// sequential spec:
//
//   hi-universal : Algorithm 5 over Algorithm 6 (wait-free, state-quiescent HI)
//   leaky        : FK-style wait-free universal (not HI) — the "cost of HI"
//                  comparison: same helping structure, no clearing stages
//   cas-loop     : single-word CAS retry (lock-free, perfect HI, no helping)
//   lock         : std::mutex around the sequential state
//
// Shape expected (and what the paper's theory predicts):
//   * throughput: cas-loop ≥ leaky ≈ hi-universal (clearing costs a constant
//     factor), lock collapses under contention;
//   * tail latency: the wait-free constructions have bounded max latency;
//     the cas-loop's per-op retry count is unbounded (lock-freedom only).
//
// emit_bench_json() writes BENCH_universal.json with build metadata and the
// per-result allocs_per_op field (0.0 in steady state — helping chains
// recycle through the frame arena; docs/PERF.md).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "rt/baselines_rt.h"
#include "rt/universal_rt.h"
#include "spec/counter_spec.h"
#include "util/bench_json.h"
#include "util/stats.h"

namespace hi {
namespace {

using spec::CounterSpec;

const CounterSpec& counter_spec() {
  static const CounterSpec spec(0xffffff, 0);  // rt responses must fit 24 bits
  return spec;
}

template <typename Obj>
Obj* make_object(int threads);

template <>
rt::RtUniversal<CounterSpec>* make_object(int threads) {
  return new rt::RtUniversal<CounterSpec>(counter_spec(), threads);
}
template <>
rt::RtLeakyUniversal<CounterSpec>* make_object(int threads) {
  return new rt::RtLeakyUniversal<CounterSpec>(counter_spec(), threads);
}
template <>
rt::RtCasLoopObject<CounterSpec>* make_object(int /*threads*/) {
  return new rt::RtCasLoopObject<CounterSpec>(counter_spec());
}
template <>
rt::RtLockObject<CounterSpec>* make_object(int /*threads*/) {
  return new rt::RtLockObject<CounterSpec>(counter_spec());
}

template <typename Obj>
void BM_CounterInc(benchmark::State& state) {
  static Obj* object = nullptr;
  if (state.thread_index() == 0) {
    object = make_object<Obj>(state.threads());
  }
  const int pid = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(object->apply(pid, CounterSpec::inc()));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete object;
    object = nullptr;
  }
}

BENCHMARK(BM_CounterInc<rt::RtUniversal<CounterSpec>>)
    ->Name("hi_universal/inc")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK(BM_CounterInc<rt::RtLeakyUniversal<CounterSpec>>)
    ->Name("leaky_universal/inc")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK(BM_CounterInc<rt::RtCasLoopObject<CounterSpec>>)
    ->Name("cas_loop/inc")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK(BM_CounterInc<rt::RtLockObject<CounterSpec>>)
    ->Name("lock/inc")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

// Read-side: Algorithm 5's ApplyReadOnly is a single Load.
void BM_HiUniversalRead(benchmark::State& state) {
  static rt::RtUniversal<CounterSpec>* object = nullptr;
  if (state.thread_index() == 0) {
    object = make_object<rt::RtUniversal<CounterSpec>>(state.threads());
  }
  const int pid = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(object->apply(pid, CounterSpec::read()));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete object;
    object = nullptr;
  }
}
BENCHMARK(BM_HiUniversalRead)
    ->Name("hi_universal/read")
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// ---- Latency-percentile section (custom; the wait-freedom shape) ----

template <typename Obj>
util::Samples latency_run(int threads, int ops_each) {
  Obj* object = make_object<Obj>(threads);
  std::vector<util::Samples> per_thread(threads);
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (int pid = 0; pid < threads; ++pid) {
    pool.emplace_back([&, pid] {
      per_thread[pid].reserve(ops_each);
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < ops_each; ++i) {
        const auto start = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(object->apply(pid, CounterSpec::inc()));
        const auto stop = std::chrono::steady_clock::now();
        per_thread[pid].add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
  util::Samples all;
  for (const auto& s : per_thread) all.merge(s);
  delete object;
  return all;
}

void print_latency_table() {
  constexpr int kThreads = 8;
  constexpr int kOps = 30000;
  std::printf(
      "=== E14: per-op latency (ns), counter inc, %d threads x %d ops ===\n",
      kThreads, kOps);
  std::printf("%-16s %8s %8s %8s %10s\n", "object", "p50", "p99", "p99.9",
              "max");
  auto row = [](const char* name, const util::Samples& s) {
    std::printf("%-16s %8llu %8llu %8llu %10llu\n", name,
                static_cast<unsigned long long>(s.percentile(0.50)),
                static_cast<unsigned long long>(s.percentile(0.99)),
                static_cast<unsigned long long>(s.percentile(0.999)),
                static_cast<unsigned long long>(s.max()));
  };
  row("hi_universal",
      latency_run<rt::RtUniversal<CounterSpec>>(kThreads, kOps));
  row("leaky_universal",
      latency_run<rt::RtLeakyUniversal<CounterSpec>>(kThreads, kOps));
  row("cas_loop",
      latency_run<rt::RtCasLoopObject<CounterSpec>>(kThreads, kOps));
  row("lock", latency_run<rt::RtLockObject<CounterSpec>>(kThreads, kOps));
  std::printf("\n");
}

/// Machine-readable results (BENCH_universal.json) for cross-PR tracking.
void emit_bench_json() {
  util::BenchReport report("universal");
  for (const int threads : {1, 2, 4}) {
    rt::RtUniversal<CounterSpec> object(counter_spec(), threads);
    auto result = util::measure_throughput(
        "hi_universal/inc", threads, 20'000, [&object](int tid, std::size_t) {
          benchmark::DoNotOptimize(object.apply(tid, CounterSpec::inc()));
        });
    result.bytes_per_object = object.memory_bytes();
    report.add(std::move(result));
  }
  {
    rt::RtUniversal<CounterSpec> object(counter_spec(), 2);
    auto result = util::measure_throughput(
        "hi_universal/read", 1, 100'000, [&object](int, std::size_t) {
          benchmark::DoNotOptimize(object.apply(0, CounterSpec::read()));
        });
    result.bytes_per_object = object.memory_bytes();
    report.add(std::move(result));
  }
  {
    rt::RtLeakyUniversal<CounterSpec> object(counter_spec(), 4);
    auto result = util::measure_throughput(
        "leaky_universal/inc", 4, 20'000, [&object](int tid, std::size_t) {
          benchmark::DoNotOptimize(object.apply(tid, CounterSpec::inc()));
        });
    result.bytes_per_object = object.memory_bytes();
    report.add(std::move(result));
  }
  report.write();
}

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::emit_bench_json();
  hi::print_latency_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
