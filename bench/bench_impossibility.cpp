// Experiments E7 + E8 — the impossibility theorems as measurements:
//
//   Theorem 17: no wait-free state-quiescent-HI register from binary
//   registers. The Lemma 16 pigeonhole adversary drives Algorithm 2's
//   reader; its step count grows LINEARLY with adversary rounds and it
//   never returns (the same series against Algorithm 4 terminates within
//   its wait-freedom bound — the matching possibility).
//
//   Theorem 20: the queue-with-Peek analogue via S(i1,i2) representative
//   walks against the strawman HI queue.
//
// Output: one series per victim — rounds vs reader steps vs returned?.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "adversary/queue_adversary.h"
#include "adversary/reader_adversary.h"
#include "baseline/strawman_queue.h"
#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "sim/harness.h"

namespace hi {
namespace {

constexpr int kWriter = 0;
constexpr int kReader = 1;

template <typename Impl>
struct RegisterSys {
  spec::RegisterSpec spec;
  sim::Memory memory;
  sim::Scheduler sched;
  Impl impl;

  explicit RegisterSys(std::uint32_t k)
      : spec(k, 1), sched(2), impl(memory, spec, kWriter, kReader) {}
};

template <typename Impl>
adversary::CanonicalMap register_canon(std::uint32_t k) {
  adversary::CanonicalMap canon;
  for (std::uint32_t v = 1; v <= k; ++v) {
    RegisterSys<Impl> sys(k);
    if (v != 1) {
      (void)sim::run_solo(sys.sched, kWriter, sys.impl.write(kWriter, v));
    }
    canon.emplace(v, sys.memory.snapshot());
  }
  return canon;
}

template <typename Impl>
void register_series(const char* name, std::uint32_t k) {
  std::printf("%s (K=%u):\n", name, k);
  std::printf("  %10s %14s %10s\n", "rounds", "reader-steps", "returned");
  const auto canon = register_canon<Impl>(k);
  for (std::uint64_t rounds : {100ull, 1000ull, 10000ull, 100000ull}) {
    RegisterSys<Impl> sys(k);
    const auto plan = adversary::ct_plan(sys.spec);
    const auto result = adversary::run_starvation(
        sys.spec, sys.memory, sys.sched, sys.impl, plan, canon, kWriter,
        kReader, rounds);
    std::printf("  %10llu %14llu %10s\n",
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(result.reader_steps),
                result.reader_returned ? "yes" : "no");
    if (result.reader_returned) break;  // wait-free victim: series is flat
  }
  std::printf("\n");
}

void queue_series(std::uint32_t domain) {
  std::printf("Strawman queue Peek under Theorem 20 adversary (t=%u):\n",
              domain);
  std::printf("  %10s %14s %10s\n", "rounds", "reader-steps", "returned");
  const spec::QueueSpec spec(domain, 4);
  adversary::CanonicalMap canon;
  for (std::uint32_t i = 0; i <= domain; ++i) {
    sim::Memory memory;
    sim::Scheduler sched(2);
    baseline::StrawmanQueue impl(memory, spec, kWriter, kReader);
    if (i != 0) {
      for (const auto& op : spec.change_seq(0, i)) {
        (void)sim::run_solo(sched, kWriter, impl.apply(kWriter, op));
      }
    }
    canon.emplace(spec.encode_state(spec.representative(i)),
                  memory.snapshot());
  }
  for (std::uint64_t rounds : {100ull, 1000ull, 10000ull, 100000ull}) {
    sim::Memory memory;
    sim::Scheduler sched(2);
    baseline::StrawmanQueue impl(memory, spec, kWriter, kReader);
    const auto plan = adversary::queue_plan(spec);
    const auto result = adversary::run_starvation(
        spec, memory, sched, impl, plan, canon, kWriter, kReader, rounds);
    std::printf("  %10llu %14llu %10s\n",
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(result.reader_steps),
                result.reader_returned ? "yes" : "no");
  }
  std::printf("\n");
}

void print_series() {
  std::printf("=== Theorems 17 & 20: reader starvation series ===\n"
              "The starved victims' reader steps grow linearly with rounds\n"
              "and never return; the wait-free control returns immediately.\n\n");
  register_series<core::LockFreeHiRegister>(
      "Algorithm 2 reader (state-quiescent HI, hence starvable)", 5);
  register_series<core::WaitFreeHiRegister>(
      "Algorithm 4 reader (wait-free control: adversary fails)", 5);
  queue_series(4);
}

// Timing: adversary round cost (one full o_change + pigeonhole search).
void BM_AdversaryRound(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  const auto canon = register_canon<core::LockFreeHiRegister>(k);
  RegisterSys<core::LockFreeHiRegister> sys(k);
  const auto plan = adversary::ct_plan(sys.spec);
  // One long adversary run, measuring amortized per-round cost.
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    RegisterSys<core::LockFreeHiRegister> fresh(k);
    state.ResumeTiming();
    const auto result = adversary::run_starvation(
        fresh.spec, fresh.memory, fresh.sched, fresh.impl, plan, canon,
        kWriter, kReader, 1000);
    rounds += result.rounds_executed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_AdversaryRound)->Arg(3)->Arg(5)->Arg(8);

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::print_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
