// Experiment E2 — reproduces **Figure 1**: "Illustration of the three HI
// definitions" on a register execution:
//
//     w:  |--- Write(2) ---|        |--- Write(4) ---|
//     r:            |--- Read ---|
//     points:  ①         ②        ③ (mid-Write)      ④
//
//   Perfect HI         : observer may look at ①②③④ (and everywhere else)
//   State-quiescent HI : ①②④ (no state-changing op pending)
//   Quiescent HI       : ①④ (nothing pending)
//
// The binary replays this schedule on Algorithms 1, 2 and 4 and prints the
// memory representation at the four points, making the definitions — and the
// leaks — visible: Algorithm 1 leaks at every point; Algorithm 2's mid-write
// point ③ is off-canon (allowed: it only claims state-quiescent HI);
// Algorithm 4 additionally shows reader traces at ② (allowed: it only claims
// quiescent HI).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "core/vidyasankar.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/register_spec.h"

namespace hi {
namespace {

constexpr int kWriter = 0;
constexpr int kReader = 1;
constexpr std::uint32_t kValues = 5;

template <typename Impl>
void replay(const char* name) {
  spec::RegisterSpec spec(kValues, 2);
  sim::Memory memory;
  sim::Scheduler sched(2);
  Impl impl(memory, spec, kWriter, kReader);

  std::printf("--- %s ---\n", name);
  std::printf("  point 1 (quiescent, value=2):        %s\n",
              memory.dump().c_str());

  // Write(2) completes (it is also the initial value; rewrite it to make the
  // execution concrete), with a Read overlapping its tail.
  sim::OpTask<std::uint32_t> write2 = impl.write(kWriter, 2);
  sched.start(kWriter, write2);
  sched.step(kWriter);  // A[2] <- 1
  sim::OpTask<std::uint32_t> read = impl.read(kReader);
  sched.start(kReader, read);
  sched.step(kReader);  // reader's first step (overlaps the write)
  while (sched.runnable(kWriter)) sched.step(kWriter);
  sched.finish(kWriter);

  // Point 2: Read pending, no Write pending — state-quiescent.
  std::printf("  point 2 (read pending, value=2):     %s\n",
              memory.dump().c_str());

  while (sched.runnable(kReader)) sched.step(kReader);
  sched.finish(kReader);
  const std::uint32_t read_value = read.take_result();

  // Write(4) starts; stop it mid-flight.
  sim::OpTask<std::uint32_t> write4 = impl.write(kWriter, 4);
  sched.start(kWriter, write4);
  for (int i = 0; i < 2 && sched.runnable(kWriter); ++i) sched.step(kWriter);

  // Point 3: Write pending — only perfect HI would allow observing here.
  std::printf("  point 3 (mid-Write(4)):              %s\n",
              memory.dump().c_str());

  while (sched.runnable(kWriter)) sched.step(kWriter);
  sched.finish(kWriter);

  std::printf("  point 4 (quiescent, value=4):        %s\n",
              memory.dump().c_str());
  std::printf("  (the overlapping Read returned %u)\n\n", read_value);
}

void print_figure1() {
  std::printf(
      "=== Figure 1: observation points under the three HI definitions ===\n"
      "Execution: Write(2) || Read , then Write(4); K=%u, initial value 2.\n"
      "Perfect HI allows points 1-4; state-quiescent HI allows 1,2,4;\n"
      "quiescent HI allows 1,4.\n\n",
      kValues);
  replay<core::VidyasankarRegister>(
      "Algorithm 1 (Vidyasankar) — leaks even at quiescent points");
  replay<core::LockFreeHiRegister>(
      "Algorithm 2 — canonical at 1,2,4 (state-quiescent HI)");
  replay<core::WaitFreeHiRegister>(
      "Algorithm 4 — canonical at 1,4 (quiescent HI); traces allowed at 2,3");
}

// Timing: cost of taking a memory snapshot at an observation point.
void BM_SnapshotCost(benchmark::State& state) {
  spec::RegisterSpec spec(kValues, 2);
  sim::Memory memory;
  sim::Scheduler sched(2);
  core::WaitFreeHiRegister impl(memory, spec, kWriter, kReader);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory.snapshot());
  }
}
BENCHMARK(BM_SnapshotCost);

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::print_figure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
