// §5.1 perfect-HI set on hardware (RtHiSet, the RtEnv instantiation of
// algo/hi_set.h): every operation is a single seq_cst atomic access to one
// cache-line-padded binary cell, so this workload measures the raw cost of
// the perfect-HI discipline — and how it scales when multiple threads hit
// disjoint vs overlapping elements.
//
// emit_bench_json() writes BENCH_hi_set.json with build metadata and the
// per-result allocs_per_op field (0.0 in steady state; docs/PERF.md).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "rt/hi_set_rt.h"
#include "util/bench_json.h"

namespace hi {
namespace {

constexpr std::uint32_t kDomain = 64;

void BM_InsertRemove(benchmark::State& state) {
  static rt::RtHiSet* set = nullptr;
  if (state.thread_index() == 0) set = new rt::RtHiSet(kDomain);
  // Each thread toggles its own stripe of elements: disjoint cache lines,
  // the embarrassingly-parallel case the padded layout is built for.
  const std::uint32_t base =
      (static_cast<std::uint32_t>(state.thread_index()) * 8) % kDomain;
  std::uint32_t i = 0;
  for (auto _ : state) {
    const std::uint32_t v = base + (i++ % 8) + 1;
    benchmark::DoNotOptimize(set->insert(v));
    benchmark::DoNotOptimize(set->remove(v));
  }
  state.SetItemsProcessed(2 * state.iterations());
  if (state.thread_index() == 0) {
    delete set;
    set = nullptr;
  }
}
BENCHMARK(BM_InsertRemove)
    ->Name("insert_remove")
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_Lookup(benchmark::State& state) {
  static rt::RtHiSet* set = nullptr;
  if (state.thread_index() == 0) {
    set = new rt::RtHiSet(kDomain, /*initial_bits=*/0x5555555555555555ull);
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set->lookup((i++ % kDomain) + 1));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete set;
    set = nullptr;
  }
}
BENCHMARK(BM_Lookup)->Name("lookup")->Threads(1)->Threads(8)->UseRealTime();

/// Machine-readable results (BENCH_hi_set.json) for cross-PR tracking.
///
/// The packed default makes the whole set ONE atomic word (8 bytes vs 4 KiB
/// of padded cells at t=64) — but disjoint-element writers then serialize
/// on that word's cache line, while the padded layout gives each element
/// its own line. The *_padded rows measure the SAME striped workload on
/// both layouts so the false-sharing-free vs word-contention tradeoff is a
/// same-run comparison (docs/PERF.md "padded vs packed"); the /d16 rows
/// scale the domain down to show packing is domain-independent one-word
/// cost while the padded footprint scales linearly.
void emit_bench_json() {
  util::BenchReport report("hi_set");
  const auto insert_remove_rows = [&report](const char* name, auto make_set,
                                            std::uint32_t domain) {
    for (const int threads : {1, 2, 4}) {
      auto set = make_set();
      auto result = util::measure_throughput(
          name, threads, 100'000, [&set, domain](int tid, std::size_t i) {
            const std::uint32_t v =
                ((static_cast<std::uint32_t>(tid) * 8) +
                 (static_cast<std::uint32_t>(i) % 8)) % domain + 1;
            benchmark::DoNotOptimize(set.insert(v));
            benchmark::DoNotOptimize(set.remove(v));
          });
      result.bytes_per_object = set.memory_bytes();
      report.add(std::move(result));
    }
  };
  insert_remove_rows("insert_remove", [] { return rt::RtHiSet(kDomain); },
                     kDomain);
  insert_remove_rows("insert_remove_padded",
                     [] { return rt::RtHiSetPadded(kDomain); }, kDomain);
  insert_remove_rows("insert_remove/d16", [] { return rt::RtHiSet(16); }, 16);

  const auto lookup_row = [&report](const char* name, auto make_set,
                                    std::uint32_t domain) {
    auto set = make_set();
    auto result = util::measure_throughput(
        name, 1, 200'000, [&set, domain](int, std::size_t i) {
          benchmark::DoNotOptimize(
              set.lookup(static_cast<std::uint32_t>(i % domain) + 1));
        });
    result.bytes_per_object = set.memory_bytes();
    report.add(std::move(result));
  };
  lookup_row("lookup",
             [] { return rt::RtHiSet(kDomain, 0x5555555555555555ull); },
             kDomain);
  lookup_row("lookup_padded",
             [] { return rt::RtHiSetPadded(kDomain, 0x5555555555555555ull); },
             kDomain);
  report.write();
}

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::emit_bench_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
