// Experiment E14 ablations — the measurable cost and necessity of the HI
// machinery in Algorithm 5:
//
//  (a) red-lines ablation: clear_contexts=false removes the RL operations
//      (lines 22, 27, 18R.2). Throughput improves slightly; history
//      independence breaks — context residue persists at quiescence (the
//      §6.1 counter example). Verified and printed.
//  (b) upward-clearing ablation for the register: Algorithm 2 without its
//      up-clear loop is Algorithm 1 — faster writes, but the memory leaks
//      old values. Verified via memory images.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "rt/registers_rt.h"
#include "rt/universal_rt.h"
#include "spec/counter_spec.h"

namespace hi {
namespace {

using spec::CounterSpec;

const CounterSpec& counter_spec() {
  static const CounterSpec spec(0xffffff, 0);
  return spec;
}

void BM_WithClearing(benchmark::State& state) {
  static rt::RtUniversal<CounterSpec>* object = nullptr;
  if (state.thread_index() == 0) {
    object = new rt::RtUniversal<CounterSpec>(counter_spec(), state.threads(),
                                              /*clear_contexts=*/true);
  }
  const int pid = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(object->apply(pid, CounterSpec::inc()));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete object;
    object = nullptr;
  }
}
void BM_WithoutClearing(benchmark::State& state) {
  static rt::RtUniversal<CounterSpec>* object = nullptr;
  if (state.thread_index() == 0) {
    object = new rt::RtUniversal<CounterSpec>(counter_spec(), state.threads(),
                                              /*clear_contexts=*/false);
  }
  const int pid = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(object->apply(pid, CounterSpec::inc()));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete object;
    object = nullptr;
  }
}
BENCHMARK(BM_WithClearing)
    ->Name("alg5/with_rl_clearing")
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK(BM_WithoutClearing)
    ->Name("alg5/without_rl_clearing(ablation)")
    ->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void print_hi_verdicts() {
  std::printf("=== ablation (a): Algorithm 5 red lines (RL clearing) ===\n");
  for (const bool clearing : {true, false}) {
    rt::RtUniversal<CounterSpec> object(counter_spec(), 4, clearing);
    std::vector<std::thread> pool;
    for (int pid = 0; pid < 4; ++pid) {
      pool.emplace_back([&, pid] {
        for (int i = 0; i < 2000; ++i) {
          (void)object.apply(pid, CounterSpec::inc());
        }
      });
    }
    for (auto& t : pool) t.join();
    std::printf(
        "  clear_contexts=%-5s: state=%llu, context residue at quiescence: "
        "%#llx %s\n",
        clearing ? "true" : "false",
        static_cast<unsigned long long>(object.head_state_encoded()),
        static_cast<unsigned long long>(object.context_union()),
        clearing ? "(HI holds)" : "(history leaked!)");
  }

  std::printf("\n=== ablation (b): Algorithm 2's upward clearing ===\n");
  rt::RtLockFreeHiRegister with_clear(4);
  with_clear.write(3);
  with_clear.write(1);
  const auto canonical = with_clear.memory_image();
  rt::RtVidyasankarRegister without_clear(4);  // = Alg 2 minus the up-clear
  without_clear.write(3);
  without_clear.write(1);
  const auto leaky = without_clear.memory_image();
  auto show = [](const char* label, const std::vector<std::uint8_t>& img) {
    std::printf("  %-22s A = [", label);
    for (std::size_t i = 0; i < img.size(); ++i) {
      std::printf("%s%u", i ? "," : "", img[i]);
    }
    std::printf("]\n");
  };
  show("with up-clear (Alg 2):", canonical);
  show("without (= Alg 1):", leaky);
  std::printf("  same abstract state (1); %s\n\n",
              canonical == leaky ? "identical memory (unexpected!)"
                                 : "the ablated memory leaks Write(3)");
}

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::print_hi_verdicts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
