// Traffic-trace workload rows (BENCH_traffic.json): the util/traffic.h
// driver against the rt universal construction, in both plain (paper
// Algorithm 5) and flat-combining modes.
//
// Row families:
//   traffic/closed_contended_{plain,combine}  — closed-loop peak capacity
//       at matched thread count; THE batching comparison: the combine row
//       reports batch_size_mean > 1 under contention and at least matches
//       the plain row's ops/sec (the announce scan is paid back by
//       replacing the mode-B completion dance with two uncontended Stores
//       per helped op).
//   traffic/closed_oversub_combine            — heavy oversubscription
//       (threads >> cores): every preemption parks announced ops that the
//       next running thread sweeps into one batch.
//   traffic/open_poisson_{plain,combine}      — open-loop arrivals at a
//       fixed offered load, with per-class rows (`.update` / `.read`):
//       sojourn-latency percentiles p50/p99/p999 per class.
//   traffic/open_bursty_combine               — mean-preserving bursts
//       (the combining sweet spot; the nightly soak stretches this row).
//   traffic/open_trace_plain                  — replayed inter-arrival
//       trace (HI_TRAFFIC_TRACE=<file> to replay a recorded one; a bundled
//       synthetic day-night pattern otherwise).
//
// Every row keeps the allocs_per_op == 0 contract (the driver's closed-loop
// warmup steady-states the frame arenas before the tally arms) and is gated
// by check_bench.py's traffic suite: p50 ≤ p99 ≤ p999, batch_size_mean ≥ 1,
// achieved_load ≤ offered_load on open rows.
//
// Env knobs: HI_TRAFFIC_OPS (per-thread ops, default 30000),
// HI_TRAFFIC_SOAK=1 (nightly: 16x ops on the bursty row).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rt/universal_rt.h"
#include "spec/counter_spec.h"
#include "util/bench_json.h"
#include "util/traffic.h"

namespace hi {
namespace {

using spec::CounterSpec;
using util::ArrivalProcess;
using util::TrafficClass;
using util::TrafficConfig;

const CounterSpec& counter_spec() {
  static const CounterSpec spec(0xffffff, 0);  // responses must fit 24 bits
  return spec;
}

std::size_t env_ops(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    const long long parsed = std::atoll(value);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

const std::vector<TrafficClass>& update_read_mix() {
  static const std::vector<TrafficClass> mix = {{"update", 3.0},
                                                {"read", 1.0}};
  return mix;
}

/// One universal-construction traffic scenario: build the object, drive the
/// configured arrivals, attach batch statistics, emit aggregate + per-class
/// rows.
void universal_rows(util::BenchReport& report, const std::string& name,
                    int threads, std::size_t ops, const TrafficConfig& cfg,
                    bool combine) {
  rt::RtUniversal<CounterSpec> object(counter_spec(), threads,
                                      /*clear_contexts=*/true, combine);
  auto result = util::run_traffic(
      threads, ops, cfg, update_read_mix(),
      [&object](int tid, std::uint32_t cls, std::size_t) {
        benchmark::DoNotOptimize(object.apply(
            tid, cls == 0 ? CounterSpec::inc() : CounterSpec::read()));
      });
  const std::uint64_t batches = object.batches_installed();
  const double batch_mean =
      batches > 0 ? static_cast<double>(object.ops_combined()) /
                        static_cast<double>(batches)
                  : 1.0;
  for (auto& row : result.to_results(name)) {
    row.bytes_per_object = object.memory_bytes();
    row.batch_size_mean = batch_mean;
    report.add(std::move(row));
  }
}

/// The bundled synthetic trace: a day-night load pattern — dense daytime
/// gaps, sparse nighttime gaps, repeated (ns units).
std::vector<std::uint64_t> default_trace() {
  std::vector<std::uint64_t> gaps;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int i = 0; i < 48; ++i) gaps.push_back(4'000);    // "day"
    for (int i = 0; i < 16; ++i) gaps.push_back(60'000);   // "night"
  }
  return gaps;
}

void emit_bench_json() {
  const std::size_t ops = env_ops("HI_TRAFFIC_OPS", 30'000);
  const bool soak = std::getenv("HI_TRAFFIC_SOAK") != nullptr;
  util::BenchReport report("traffic");

  // Closed-loop contended pair: the flat-combining justification row.
  {
    TrafficConfig cfg;
    cfg.arrivals = ArrivalProcess::kClosedLoop;
    cfg.seed = 11;
    universal_rows(report, "traffic/closed_contended_plain", 3, ops, cfg,
                   /*combine=*/false);
    universal_rows(report, "traffic/closed_contended_combine", 3, ops, cfg,
                   /*combine=*/true);
  }
  // Oversubscription: more workers than cores, so preemption parks whole
  // groups of announced ops for the next slice's winner to batch.
  {
    TrafficConfig cfg;
    cfg.arrivals = ArrivalProcess::kClosedLoop;
    cfg.seed = 13;
    universal_rows(report, "traffic/closed_oversub_combine", 8, ops / 2, cfg,
                   /*combine=*/true);
  }
  // Open-loop Poisson at a fixed offered load (under peak, so the row
  // measures sojourn latency rather than saturation).
  {
    TrafficConfig cfg;
    cfg.arrivals = ArrivalProcess::kPoisson;
    cfg.offered_ops_per_sec = 200'000.0;
    cfg.seed = 17;
    universal_rows(report, "traffic/open_poisson_plain", 3, ops, cfg,
                   /*combine=*/false);
    universal_rows(report, "traffic/open_poisson_combine", 3, ops, cfg,
                   /*combine=*/true);
  }
  // Bursty arrivals: same mean rate as the Poisson row, 8x rate inside
  // bursts — the tail-latency stress and the nightly soak row.
  {
    TrafficConfig cfg;
    cfg.arrivals = ArrivalProcess::kBursty;
    cfg.offered_ops_per_sec = 200'000.0;
    cfg.burst_factor = 8.0;
    cfg.burst_len = 32;
    cfg.seed = 19;
    universal_rows(report, "traffic/open_bursty_combine", 3,
                   soak ? ops * 16 : ops, cfg, /*combine=*/true);
  }
  // Trace replay: a recorded gap file if provided, else the bundled
  // synthetic day-night pattern.
  {
    TrafficConfig cfg;
    cfg.arrivals = ArrivalProcess::kTrace;
    if (const char* path = std::getenv("HI_TRAFFIC_TRACE")) {
      cfg.trace_gaps_ns = util::load_gaps_file(path);
    }
    if (cfg.trace_gaps_ns.empty()) cfg.trace_gaps_ns = default_trace();
    cfg.seed = 23;
    universal_rows(report, "traffic/open_trace_plain", 2, ops, cfg,
                   /*combine=*/false);
  }
  report.write();
}

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::emit_bench_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
