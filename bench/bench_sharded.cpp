// Sharded perfect-HI store on hardware (RtShardedHiSet, the RtEnv
// instantiation of algo/sharded_set.h): millions of keys behind one
// linearizable facade, every operation one seq_cst atomic on one word of
// one shard.
//
// What the shard sweep measures: the workload concentrates a multi-threaded
// insert/remove/contains mix on a window of ADJACENT hot keys (plus a tail
// of cold lookups across the whole domain — the realistic skew for an audit
// store). Under ONE shard those hot keys pack into a handful of adjacent
// words — one or two cache lines every thread RMWs — so throughput is
// word-contention-bound. Under kStriped placement with N shards the same
// hot window spreads across N separately-allocated shards (different words,
// different cache lines), so contention drops roughly ∝ N until thread
// count or memory latency takes over: ops/sec must scale monotonically
// 1 → 16 shards (the check_bench.py acceptance bound is ≥ 2× at 16 vs 1).
// The mixed_blocked row pins the other end of the placement knob: kBlocked
// keeps the hot window inside one shard regardless of shard count, so it
// stays contention-bound — the tradeoff measured for PR 5's packed layout,
// now tunable (docs/PERF.md "Reading the sharded rows").
//
// bytes_per_object is the real shared-storage footprint: ~domain/8 bytes of
// packed membership words plus one tail word per shard, gated in
// check_bench.py at ≤ 2× the domain/8 information-theoretic floor (the
// domain is parsed from the row name's "/<n>M/" segment).
//
// emit_bench_json() writes BENCH_sharded.json with build metadata and the
// per-result allocs_per_op field (0.0 in steady state: the facade forwards
// the shard's single coroutine frame, recycled by the per-thread arena).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "rt/sharded_set_rt.h"
#include "util/bench_json.h"

namespace hi {
namespace {

constexpr std::uint32_t kMillion = 1'000'000;
// 256 adjacent hot keys in the middle of the domain: 4 packed words (well
// under one cache line) when unsharded, N distinct words under N striped
// shards.
constexpr std::uint32_t kHotWindow = 256;

/// Cheap per-op mixer (splitmix-style) — deterministic, allocation-free.
constexpr std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The insert/remove/contains mix over a hot window plus cold lookups:
/// op i of thread tid — 1/8 cold contains (anywhere in the domain),
/// otherwise hot-window traffic at 25% insert / 25% remove / 50% contains.
template <typename Set>
void mixed_op(Set& set, std::uint32_t domain, int tid, std::size_t i) {
  const std::uint64_t r = mix((static_cast<std::uint64_t>(tid) << 48) | i);
  if ((i & 7) == 7) {
    const std::uint32_t cold = static_cast<std::uint32_t>(r % domain) + 1;
    benchmark::DoNotOptimize(set.lookup(cold));
    return;
  }
  const std::uint32_t hot =
      domain / 2 + static_cast<std::uint32_t>(r % kHotWindow) + 1;
  switch (i & 3) {
    case 0: benchmark::DoNotOptimize(set.insert(hot)); break;
    case 1: benchmark::DoNotOptimize(set.remove(hot)); break;
    default: benchmark::DoNotOptimize(set.lookup(hot)); break;
  }
}

void BM_ShardedMixed(benchmark::State& state) {
  static rt::RtShardedHiSet* set = nullptr;
  if (state.thread_index() == 0) {
    set = new rt::RtShardedHiSet(
        kMillion, static_cast<std::uint32_t>(state.range(0)),
        algo::ShardPlacement::kStriped);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    mixed_op(*set, kMillion, state.thread_index(), i++);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete set;
    set = nullptr;
  }
}
BENCHMARK(BM_ShardedMixed)
    ->Name("sharded_mixed")
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Threads(4)->UseRealTime();

/// Machine-readable results (BENCH_sharded.json) for cross-PR tracking.
///
/// Row naming contract (check_bench.py parses it): "…/<n>M/s<shards>" —
/// <n> million keys of domain, <shards> shards. The mixed/* rows sweep
/// shard count under kStriped at two domains; mixed_blocked/* pins the
/// kBlocked end of the placement knob at the 16-shard point for a same-run
/// contrast.
void emit_bench_json() {
  util::BenchReport report("sharded");
  const auto mixed_rows = [&report](const char* prefix, std::uint32_t domain,
                                    std::uint32_t millions,
                                    algo::ShardPlacement placement) {
    for (const std::uint32_t shards : {1u, 4u, 16u, 64u}) {
      rt::RtShardedHiSet set(domain, shards, placement);
      const std::string name = std::string(prefix) + "/" +
                               std::to_string(millions) + "M/s" +
                               std::to_string(shards);
      auto result = util::measure_throughput(
          name, /*threads=*/4, 200'000,
          [&set, domain](int tid, std::size_t i) {
            mixed_op(set, domain, tid, i);
          });
      result.bytes_per_object = set.memory_bytes();
      report.add(std::move(result));
    }
  };
  mixed_rows("mixed", kMillion, 1, algo::ShardPlacement::kStriped);
  mixed_rows("mixed", 16 * kMillion, 16, algo::ShardPlacement::kStriped);
  mixed_rows("mixed_blocked", kMillion, 1, algo::ShardPlacement::kBlocked);
  report.write();
}

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::emit_bench_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
