// Graceful degradation under stalled (crash-analog) threads: survivor
// throughput with k of n threads parked mid-operation, for the plain vs
// flat-combining universal construction and the wait-free simulation
// combinator vs the natively wait-free register (Alg 4).
//
// Rows in BENCH_degradation.json (k = 0 is the healthy baseline):
//   universal/plain_stall{k}of3    — lock-free universal, survivor incs
//   universal/combine_stall{k}of3  — flat-combining mode (stalls land right
//                                    after the announce store, BEFORE the
//                                    combining-record install — a stall
//                                    while holding the record blocks
//                                    survivors by design, the documented
//                                    limit in docs/FAULTS.md, and a bench
//                                    must not measure a hang)
//   wfs/sim_stall{k}of3            — combinator, writer survives, readers
//                                    stall (slow_path_entry_rate reported)
//   alg4/native_stall{k}of2        — natively wait-free control (rate 0.0).
//                                    Alg 4 is a SWSR register, so its sweep
//                                    is the 2-thread SWSR configuration:
//                                    k=1 stalls the one reader mid-scan and
//                                    measures the writer alone
//   rllsc/contended_backoff_{off,on} — the CAS-retry BackoffPolicy A/B
//                                    under 3-thread LL/SC contention
//
// Stalling uses the FuzzEnv stall injector (env/fuzz_env.h): a stalled
// thread arms a deterministic park point a couple of primitive boundaries
// into its first operation and stays parked for the whole measured window —
// from the survivors' perspective it crash-failed mid-op, mid-announce.
// Every row (including the k = 0 baselines and the Alg 4 control) runs over
// FuzzEnv with the injector disarmed on survivor threads, which costs one
// predictable branch per primitive — identical across rows, so the k-sweeps
// compare apples to apples. Absolute numbers are therefore NOT comparable
// to the RtEnv suites (bench_universal_rt, bench_waitfree_sim); the signal
// here is the SHAPE: survivor throughput must stay > 0 at every k < n
// (tools/check_bench.py's degradation suite gates on it) and should degrade
// roughly with the survivor count, not collapse.
//
// allocs_per_op must be 0 on every row: FuzzEnv reuses RtEnv's frame-arena
// tasks, and a parked peer must not push survivors onto an allocating path.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "algo/registers.h"
#include "algo/rllsc.h"
#include "algo/universal.h"
#include "algo/wait_free_sim.h"
#include "env/fuzz_env.h"
#include "env/rt_env.h"
#include "rt/rllsc_rt.h"
#include "spec/counter_spec.h"
#include "util/alloc_probe.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hi {
namespace {

using env::FuzzEnv;
using FuzzPacked = env::PackedBins<FuzzEnv>;

constexpr int kThreads = 3;
constexpr std::uint32_t kValues = 64;

/// measure_throughput with the first `stalled` of `total_threads` threads
/// parked mid-operation: each stalled thread arms the deterministic stall
/// injector (no random perturbation — permille 0), runs ops until it parks
/// (right after its `stall_after`-th primitive boundary), and stays parked
/// for the whole measured window. Survivors warm up, wait until every
/// stalled thread is actually parked, then run the timed loop exactly like
/// util::measure_throughput. ops/sec counts SURVIVOR completions only;
/// `threads` still reports the total (that is the configured machine, k of
/// which the adversary seized).
template <typename OpFn>
util::BenchResult measure_with_stalls(std::string name, int total_threads,
                                      int stalled, std::uint64_t stall_after,
                                      std::size_t ops_per_thread, OpFn op) {
  using Clock = std::chrono::steady_clock;
  const int survivors = total_threads - stalled;
  const std::size_t warmup_ops = std::min<std::size_t>(ops_per_thread, 1024);

  env::StallGate gate;
  std::vector<std::thread> parked;
  parked.reserve(static_cast<std::size_t>(stalled));
  for (int tid = 0; tid < stalled; ++tid) {
    parked.emplace_back([&, tid] {
      env::YieldInjector::arm(0x9e0u + static_cast<std::uint64_t>(tid),
                              env::YieldPolicy{/*permille=*/0, 1, 1});
      env::YieldInjector::arm_stall(&gate, stall_after);
      // Runs until the injector parks it mid-op (the bound only matters if
      // the stall point were unreachable, which these workloads never hit).
      for (int i = 0; i < 8; ++i) op(tid, static_cast<std::size_t>(i));
      env::YieldInjector::disarm();
    });
  }
  // Survivors must measure against peers that are already "crashed".
  const auto stall_deadline = Clock::now() + std::chrono::seconds(2);
  while (gate.stalled.load(std::memory_order_acquire) < stalled &&
         Clock::now() < stall_deadline) {
    std::this_thread::yield();
  }
  if (gate.stalled.load(std::memory_order_acquire) < stalled) {
    std::fprintf(stderr, "bench_degradation: %s: only %d of %d threads "
                         "parked before the window\n",
                 name.c_str(), gate.stalled.load(), stalled);
  }

  std::vector<util::Samples> per_thread(static_cast<std::size_t>(survivors));
  std::vector<std::uint64_t> allocs(static_cast<std::size_t>(survivors), 0);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(survivors));
  for (int s = 0; s < survivors; ++s) {
    const int tid = stalled + s;
    pool.emplace_back([&, s, tid] {
      util::Samples& samples = per_thread[static_cast<std::size_t>(s)];
      samples.reserve(ops_per_thread);
      for (std::size_t i = 0; i < warmup_ops; ++i) op(tid, i);
      const util::AllocTally tally;
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        const auto start = Clock::now();
        op(tid, i);
        const auto end = Clock::now();
        samples.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()));
      }
      allocs[static_cast<std::size_t>(s)] = tally.allocs();
    });
  }
  while (ready.load(std::memory_order_acquire) < survivors) {
  }
  const auto wall_start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& worker : pool) worker.join();
  const auto wall_end = Clock::now();
  gate.release_all();
  for (auto& worker : parked) worker.join();

  util::Samples merged;
  std::uint64_t total_allocs = 0;
  for (const util::Samples& samples : per_thread) merged.merge(samples);
  for (const std::uint64_t a : allocs) total_allocs += a;
  const double wall_sec =
      std::chrono::duration<double>(wall_end - wall_start).count();
  const double total_ops =
      static_cast<double>(ops_per_thread) * static_cast<double>(survivors);

  util::BenchResult result;
  result.name = std::move(name);
  result.threads = total_threads;
  result.ops_per_sec = wall_sec > 0 ? total_ops / wall_sec : 0.0;
  result.p50_ns = merged.percentile(0.5);
  result.p99_ns = merged.percentile(0.99);
  result.allocs_per_op =
      total_ops > 0 ? static_cast<double>(total_allocs) / total_ops : 0.0;
  return result;
}

void universal_rows(util::BenchReport& report, bool combine) {
  const spec::CounterSpec spec(1u << 20, 10);
  using Alg =
      algo::UniversalAlg<FuzzEnv, spec::CounterSpec, algo::CasRllscAlg<FuzzEnv>>;
  for (int k = 0; k < kThreads; ++k) {
    Alg obj(FuzzEnv::Ctx{}, spec, kThreads, /*clear_contexts=*/true, combine);
    const std::string name = std::string("universal/") +
                             (combine ? "combine" : "plain") + "_stall" +
                             std::to_string(k) + "of" + std::to_string(kThreads);
    // stall_after = 1: FuzzEnv brackets each primitive with two injector
    // points, so the park lands right after the FIRST primitive of the
    // stalled inc — the announce store, safely before any combining-record
    // install (survivors help the orphaned announcement; they never wait on
    // the parked thread).
    auto result = measure_with_stalls(
        name, kThreads, k, /*stall_after=*/1, 30'000,
        [&](int tid, std::size_t) {
          benchmark::DoNotOptimize(
              obj.apply(tid, spec::CounterSpec::inc()).get());
        });
    result.bytes_per_object = obj.memory_bytes();
    if (combine && obj.batches_installed() > 0) {
      result.batch_size_mean =
          static_cast<double>(obj.ops_combined()) /
          static_cast<double>(obj.batches_installed());
    }
    report.add(std::move(result));
  }
}

void wfs_rows(util::BenchReport& report) {
  using Alg = algo::WaitFreeSimHiAlg<FuzzEnv, FuzzPacked>;
  for (int k = 0; k < kThreads; ++k) {
    Alg reg(FuzzEnv::Ctx{}, kValues, kValues / 2, /*num_processes=*/kThreads,
            /*fast_limit=*/1);
    reg.reset_stats();
    util::Xoshiro256 rng(41 + static_cast<std::uint64_t>(k));
    // The writer is the HIGHEST tid, so it survives every k < n; stalled
    // low tids park mid-read (crash-analog readers).
    auto result = measure_with_stalls(
        "wfs/sim_stall" + std::to_string(k) + "of" + std::to_string(kThreads),
        kThreads, k, /*stall_after=*/2, 30'000, [&](int tid, std::size_t) {
          if (tid == kThreads - 1) {
            (void)reg.write(tid,
                            static_cast<std::uint32_t>(rng.next_in(1, kValues)))
                .get();
          } else {
            benchmark::DoNotOptimize(reg.read(tid).get());
          }
        });
    result.bytes_per_object = reg.memory_bytes();
    result.slow_path_entry_rate =
        reg.total_ops() > 0
            ? static_cast<double>(reg.slow_path_entries()) /
                  static_cast<double>(reg.total_ops())
            : 0.0;
    report.add(std::move(result));
  }
}

void alg4_rows(util::BenchReport& report) {
  // Alg 4 is SWSR: its sweep is the 2-thread configuration. tid 0 is the
  // reader (stalled when k = 1, parked mid-scan with its announce flag up);
  // tid 1 is the writer, whose help path (lines 11–15) is bounded, so it
  // stays wait-free against a reader that crashed mid-read.
  using Alg = algo::WaitFreeHiAlg<FuzzEnv, FuzzPacked>;
  constexpr int kSwsr = 2;
  for (int k = 0; k < kSwsr; ++k) {
    Alg reg(FuzzEnv::Ctx{}, kValues, kValues / 2);
    util::Xoshiro256 rng(51 + static_cast<std::uint64_t>(k));
    auto result = measure_with_stalls(
        "alg4/native_stall" + std::to_string(k) + "of" + std::to_string(kSwsr),
        kSwsr, k, /*stall_after=*/2, 30'000, [&](int tid, std::size_t) {
          if (tid == kSwsr - 1) {
            (void)reg.write(static_cast<std::uint32_t>(rng.next_in(1, kValues)))
                .get();
          } else {
            benchmark::DoNotOptimize(reg.read().get());
          }
        });
    result.bytes_per_object = reg.memory_bytes();
    result.slow_path_entry_rate = 0.0;  // natively wait-free: no slow path
    report.add(std::move(result));
  }
}

void backoff_rows(util::BenchReport& report) {
  // The CAS-retry BackoffPolicy A/B (env/env.h): 3 threads hammering one
  // R-LLSC cell with LL+SC pairs — the retry-heavy shape the bounded
  // exponential backoff exists for. Pure RtEnv (the policy's production
  // home); restored to the default afterwards so other rows are unaffected.
  const auto saved = env::RtEnv::get_backoff();
  for (const bool on : {false, true}) {
    env::RtEnv::set_backoff(on ? env::BackoffPolicy{/*base_spins=*/4,
                                                    /*max_exponent=*/8}
                               : env::BackoffPolicy{});
    rt::RtRllsc cell(0);
    auto result = util::measure_throughput(
        std::string("rllsc/contended_backoff_") + (on ? "on" : "off"),
        kThreads, 50'000, [&](int tid, std::size_t i) {
          benchmark::DoNotOptimize(cell.ll(tid));
          benchmark::DoNotOptimize(
              cell.sc(tid, static_cast<std::uint64_t>(i & 0xff)));
        });
    result.bytes_per_object = cell.memory_bytes();
    report.add(std::move(result));
  }
  env::RtEnv::set_backoff(saved);
}

void emit_bench_json() {
  util::BenchReport report("degradation");
  universal_rows(report, /*combine=*/false);
  universal_rows(report, /*combine=*/true);
  wfs_rows(report);
  alg4_rows(report);
  backoff_rows(report);
  report.write();
}

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::emit_bench_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
