// Experiment E1 — reproduces **Table 1**: "Summary of results for
// implementing a SWSR multi-valued register from binary registers".
//
//                Perfect HI   State-quiescent HI   Quiescent HI   Progress
//   Wait-free    Impossible   Impossible (Cor.18)  Possible(Alg4) wait-free
//   Lock-free    Impossible   Possible (Alg 2)     Possible       lock-free
//
// Every cell is backed by an executable check: the "possible" cells run the
// algorithm under randomized schedules through the HI checker with the
// claimed observation points; the "impossible" cells run the Lemma 16
// pigeonhole adversary (wait-free row) and the Proposition 14 distance
// argument (perfect-HI column). The binary prints the verdict matrix, then
// google-benchmark timings for the two HI algorithms in the simulator.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "adversary/reader_adversary.h"
#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "core/vidyasankar.h"
#include "sim/harness.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

constexpr int kWriter = 0;
constexpr int kReader = 1;
constexpr std::uint32_t kValues = 5;

template <typename Impl>
struct Sys {
  spec::RegisterSpec spec;
  sim::Memory memory;
  sim::Scheduler sched;
  Impl impl;

  Sys() : spec(kValues, 1), sched(2), impl(memory, spec, kWriter, kReader) {}
};

template <typename Impl>
adversary::CanonicalMap canon_map() {
  adversary::CanonicalMap canon;
  for (std::uint32_t v = 1; v <= kValues; ++v) {
    Sys<Impl> sys;
    if (v != 1) {
      (void)sim::run_solo(sys.sched, kWriter, sys.impl.write(kWriter, v));
    }
    canon.emplace(v, sys.memory.snapshot());
  }
  return canon;
}

template <typename Hist>
std::uint64_t last_write(const Hist& history) {
  std::uint64_t value = 1;
  for (const auto& entry : history.entries()) {
    if (entry.op.kind == spec::RegisterSpec::Kind::kWrite && entry.completed()) {
      value = entry.op.value;
    }
  }
  return value;
}

/// Runs `impl` under random schedules and reports whether the given
/// observation class was history independent.
template <typename Impl>
bool check_hi(bool state_quiescent_points) {
  verify::HiChecker checker;
  const auto canon = canon_map<Impl>();
  for (const auto& [state, snap] : canon) checker.set_canonical(state, snap);
  for (std::uint64_t seed = 1; seed <= 20 && checker.consistent(); ++seed) {
    Sys<Impl> sys;
    sim::Runner<spec::RegisterSpec, Impl> runner(
        sys.spec, sys.memory, sys.sched, sys.impl,
        [](const auto& hist) { return last_write(hist); });
    std::vector<std::vector<spec::RegisterSpec::Op>> work(2);
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 30; ++i) {
      work[kWriter].push_back(spec::RegisterSpec::write(
          static_cast<std::uint32_t>(rng.next_in(1, kValues))));
      work[kReader].push_back(spec::RegisterSpec::read());
    }
    auto result = runner.run(work, {.seed = seed});
    if (result.timed_out) return false;
    const auto& points =
        state_quiescent_points ? result.state_quiescent : result.quiescent;
    for (const auto& obs : points) {
      checker.observe(obs.state, obs.mem, "seed=" + std::to_string(seed));
    }
  }
  return checker.consistent();
}

/// Runs the Theorem 17 adversary; true iff the reader is starved forever
/// (i.e. the implementation is NOT wait-free for the reader).
template <typename Impl>
bool adversary_starves(std::uint64_t rounds) {
  const auto canon = canon_map<Impl>();
  Sys<Impl> sys;
  const auto plan = adversary::ct_plan(sys.spec);
  const auto result = adversary::run_starvation(
      sys.spec, sys.memory, sys.sched, sys.impl, plan, canon, kWriter, kReader,
      rounds);
  return !result.reader_returned;
}

/// Proposition 14's distance argument: with one-word base objects of < t
/// states, some pair of canonical representations is at distance ≥ 2, so no
/// perfect-HI implementation exists over this state/canon layout.
template <typename Impl>
bool perfect_hi_ruled_out() {
  const auto canon = canon_map<Impl>();
  for (std::uint32_t a = 1; a <= kValues; ++a) {
    for (std::uint32_t b = a + 1; b <= kValues; ++b) {
      if (canon.at(a).distance(canon.at(b)) >= 2) return true;
    }
  }
  return false;
}

void print_table1() {
  std::printf("=== Table 1: SWSR %u-valued register from binary registers ===\n",
              kValues);
  std::printf("%-12s | %-22s | %-26s | %-22s\n", "Progress", "Perfect HI",
              "State-quiescent HI", "Quiescent HI");
  std::printf("%.*s\n", 92,
              "-----------------------------------------------------------------"
              "-----------------------------");

  // Wait-free row: Algorithm 4.
  const bool wf_perfect = perfect_hi_ruled_out<core::WaitFreeHiRegister>();
  const bool wf_sq_starved = adversary_starves<core::LockFreeHiRegister>(5000);
  const bool wf_q = check_hi<core::WaitFreeHiRegister>(false);
  const bool wf_returns = !adversary_starves<core::WaitFreeHiRegister>(5000);
  std::printf("%-12s | %-22s | %-26s | %-22s\n", "Wait-free",
              wf_perfect ? "Impossible (Prop 14) OK" : "UNEXPECTED",
              wf_sq_starved ? "Impossible (Cor 18) OK" : "UNEXPECTED",
              (wf_q && wf_returns) ? "Possible (Alg 4) OK" : "FAILED");

  // Lock-free row: Algorithm 2.
  const bool lf_perfect = perfect_hi_ruled_out<core::LockFreeHiRegister>();
  const bool lf_sq = check_hi<core::LockFreeHiRegister>(true);
  const bool lf_q = check_hi<core::LockFreeHiRegister>(false);
  std::printf("%-12s | %-22s | %-26s | %-22s\n", "Lock-free",
              lf_perfect ? "Impossible (Prop 14) OK" : "UNEXPECTED",
              lf_sq ? "Possible (Alg 2) OK" : "FAILED",
              lf_q ? "Possible (Alg 2) OK" : "FAILED");

  // Context row: Algorithm 1 (wait-free, no HI at all) and Algorithm 4's
  // state-quiescent failure witness.
  const bool alg1_hi = check_hi<core::VidyasankarRegister>(false);
  const bool alg4_sq = check_hi<core::WaitFreeHiRegister>(true);
  std::printf("\nWitnesses: Alg 1 quiescent-HI check %s (expected reject); "
              "Alg 4 state-quiescent-HI check %s (expected reject)\n\n",
              alg1_hi ? "PASSED unexpectedly" : "rejected",
              alg4_sq ? "PASSED unexpectedly" : "rejected");
}

// ---- google-benchmark timings: simulator cost of each register op ----

template <typename Impl>
void run_ops(benchmark::State& state, bool reads) {
  Sys<Impl> sys;
  std::uint64_t ops = 0;
  util::Xoshiro256 rng(7);
  for (auto _ : state) {
    if (reads) {
      benchmark::DoNotOptimize(
          sim::run_solo(sys.sched, kReader, sys.impl.read(kReader)));
    } else {
      (void)sim::run_solo(
          sys.sched, kWriter,
          sys.impl.write(kWriter,
                         static_cast<std::uint32_t>(rng.next_in(1, kValues))));
    }
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

void BM_Alg1_Write(benchmark::State& s) { run_ops<core::VidyasankarRegister>(s, false); }
void BM_Alg2_Write(benchmark::State& s) { run_ops<core::LockFreeHiRegister>(s, false); }
void BM_Alg4_Write(benchmark::State& s) { run_ops<core::WaitFreeHiRegister>(s, false); }
void BM_Alg1_Read(benchmark::State& s) { run_ops<core::VidyasankarRegister>(s, true); }
void BM_Alg2_Read(benchmark::State& s) { run_ops<core::LockFreeHiRegister>(s, true); }
void BM_Alg4_Read(benchmark::State& s) { run_ops<core::WaitFreeHiRegister>(s, true); }

BENCHMARK(BM_Alg1_Write);
BENCHMARK(BM_Alg2_Write);
BENCHMARK(BM_Alg4_Write);
BENCHMARK(BM_Alg1_Read);
BENCHMARK(BM_Alg2_Read);
BENCHMARK(BM_Alg4_Read);

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
