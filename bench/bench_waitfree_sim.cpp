// The wait-free simulation combinator (algo/wait_free_sim.h over RtEnv) vs
// the native wait-free register (Alg 4): what does generic helping cost on
// hardware next to an algorithm that is wait-free by construction?
//
// Rows in BENCH_waitfree_sim.json (every row carries slow_path_entry_rate):
//   wfs/*   — rt::RtWaitFreeSimHiRegister{,Padded} (combinator over Alg 2/3)
//   alg4/*  — rt::RtWaitFreeHiRegister as the native-wait-free control
//             (rate pinned 0.0: Alg 4 has no announce/enqueue/help machinery)
// The solo wfs rows run the pure fast path (rate 0 — uncontended attempts
// never fail); wfs/forced_slow_read sets fast_limit=0 so EVERY read takes
// the announce → enqueue → help path (rate 1.0), isolating the slow path's
// full cost; the mixed/contended rows use the PADDED layout so a TryRead
// scan can actually lose to a concurrent write (packed K ≤ 64 snapshots a
// single word and never fails), making the measured rate schedule-dependent
// but in (0, 1] whenever the writer is hot enough. The
// wfs/traffic_closed_t{2,3} rows rerun that contended shape under the
// traffic driver's closed loop (util/traffic.h — the load generator
// bench_traffic.cpp uses), adding the p50/p99/p999 sojourn triple and the
// reader-count scaling of slow_path_entry_rate.
//
// The rate denominator includes each worker's untimed warmup (the stats
// counters cannot be reset mid-worker between warmup and the measured
// window); warmup is ≤ 1024 of ≥ 20k ops per thread, so the dilution is
// under 5% and identical across rows.
//
// allocs_per_op must be 0 in steady state on every row — the slow path's
// coroutine chain (announce, enqueue, help) recycles through the per-thread
// FrameArena exactly like the fast path (see rt/wait_free_sim_rt.h).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "rt/registers_rt.h"
#include "rt/wait_free_sim_rt.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/traffic.h"

namespace hi {
namespace {

constexpr std::uint32_t kValues = 64;        // packed: one-word snapshots
constexpr std::uint32_t kPaddedValues = 16;  // padded: failable scans

/// Measure one row; `rate` fills slow_path_entry_rate after the run (pass
/// nullptr-like no-op for non-combinator controls, which pin 0.0).
template <typename Reg, typename OpFn>
void row(util::BenchReport& report, const char* name, Reg& reg, int threads,
         std::size_t ops_per_thread, OpFn op) {
  reg.reset_stats();
  auto result = util::measure_throughput(name, threads, ops_per_thread, op);
  result.bytes_per_object = reg.memory_bytes();
  result.slow_path_entry_rate =
      reg.total_ops() > 0
          ? static_cast<double>(reg.slow_path_entries()) /
                static_cast<double>(reg.total_ops())
          : 0.0;
  report.add(std::move(result));
}

/// Alg 4 control rows: natively wait-free, no slow path to enter.
template <typename Reg, typename OpFn>
void control_row(util::BenchReport& report, const char* name, Reg& reg,
                 int threads, std::size_t ops_per_thread, OpFn op) {
  auto result = util::measure_throughput(name, threads, ops_per_thread, op);
  result.bytes_per_object = reg.memory_bytes();
  result.slow_path_entry_rate = 0.0;
  report.add(std::move(result));
}

void emit_bench_json() {
  util::BenchReport report("waitfree_sim");

  // ---- solo fast path vs the native control, packed K=64 ----
  {
    rt::RtWaitFreeSimHiRegister reg(kValues, kValues / 2);
    util::Xoshiro256 rng(21);
    row(report, "wfs/solo_write", reg, 1, 100'000, [&](int, std::size_t) {
      reg.write(static_cast<std::uint32_t>(rng.next_in(1, kValues)),
                /*pid=*/0);
    });
  }
  {
    rt::RtWaitFreeSimHiRegister reg(kValues, kValues / 2);
    row(report, "wfs/solo_read", reg, 1, 100'000, [&](int, std::size_t) {
      benchmark::DoNotOptimize(reg.read(/*pid=*/1));
    });
  }
  {
    rt::RtWaitFreeHiRegister reg(kValues, kValues / 2);
    util::Xoshiro256 rng(22);
    control_row(report, "alg4/solo_write", reg, 1, 100'000,
                [&](int, std::size_t) {
                  reg.write(
                      static_cast<std::uint32_t>(rng.next_in(1, kValues)));
                });
  }
  {
    rt::RtWaitFreeHiRegister reg(kValues, kValues / 2);
    control_row(report, "alg4/solo_read", reg, 1, 100'000,
                [&](int, std::size_t) { benchmark::DoNotOptimize(reg.read()); });
  }

  // ---- the slow path in isolation: fast_limit=0 forces every read through
  // announce → enqueue → self-help, even solo (rate 1.0 on the read rows;
  // the denominator also counts the direct writes a mixed row would add,
  // so this row is read-only) ----
  {
    rt::RtWaitFreeSimHiRegister reg(kValues, kValues / 2,
                                    /*num_processes=*/2, /*fast_limit=*/0);
    row(report, "wfs/forced_slow_read", reg, 1, 50'000,
        [&](int, std::size_t) { benchmark::DoNotOptimize(reg.read(1)); });
  }

  // ---- SWSR under genuine concurrency, padded so reads can fail ----
  {
    rt::RtWaitFreeSimHiRegisterPadded reg(kPaddedValues, kPaddedValues / 2);
    util::Xoshiro256 rng(23);
    row(report, "wfs/swsr_mixed", reg, 2, 50'000, [&](int tid, std::size_t) {
      if (tid == 0) {
        reg.write(static_cast<std::uint32_t>(rng.next_in(1, kPaddedValues)),
                  /*pid=*/0);
      } else {
        benchmark::DoNotOptimize(reg.read(/*pid=*/1));
      }
    });
  }
  {
    rt::RtWaitFreeHiRegisterPadded reg(kPaddedValues, kPaddedValues / 2);
    util::Xoshiro256 rng(24);
    control_row(
        report, "alg4/swsr_mixed", reg, 2, 50'000, [&](int tid, std::size_t) {
          if (tid == 0) {
            reg.write(
                static_cast<std::uint32_t>(rng.next_in(1, kPaddedValues)));
          } else {
            benchmark::DoNotOptimize(reg.read());
          }
        });
  }

  // ---- one writer, two helped readers: the helping machinery under the
  // contention it exists for (num_processes=3; readers share the queue) ----
  {
    rt::RtWaitFreeSimHiRegisterPadded reg(kPaddedValues, kPaddedValues / 2,
                                          /*num_processes=*/3,
                                          /*fast_limit=*/1);
    util::Xoshiro256 rng(25);
    row(report, "wfs/contended_reads", reg, 3, 30'000,
        [&](int tid, std::size_t) {
          if (tid == 0) {
            reg.write(
                static_cast<std::uint32_t>(rng.next_in(1, kPaddedValues)),
                /*pid=*/0);
          } else {
            benchmark::DoNotOptimize(reg.read(/*pid=*/tid));
          }
        });
  }

  // ---- contention scaling under the traffic driver's closed loop (the
  // same load generator as bench_traffic.cpp, so the wfs rows and the
  // universal traffic rows are comparable run-for-run): writer pid 0 is
  // hot, the padded layout makes reader TryRead scans actually lose to it,
  // and slow_path_entry_rate grows with the reader count — the
  // contention-scaling signal. Full percentile triple + load pair on each
  // row, like every traffic-driven row. ----
  for (const int threads : {2, 3}) {
    rt::RtWaitFreeSimHiRegisterPadded reg(kPaddedValues, kPaddedValues / 2,
                                          /*num_processes=*/threads,
                                          /*fast_limit=*/1);
    reg.reset_stats();
    util::TrafficConfig cfg;
    cfg.seed = 31 + static_cast<std::uint64_t>(threads);
    const util::TrafficResult result = util::run_traffic(
        threads, 30'000, cfg, {{"op", 1.0}},
        [&](int tid, std::uint32_t, std::size_t i) {
          if (tid == 0) {
            reg.write(static_cast<std::uint32_t>(i % kPaddedValues) + 1,
                      /*pid=*/0);
          } else {
            benchmark::DoNotOptimize(reg.read(/*pid=*/tid));
          }
        });
    const double rate =
        reg.total_ops() > 0
            ? static_cast<double>(reg.slow_path_entries()) /
                  static_cast<double>(reg.total_ops())
            : 0.0;
    for (util::BenchResult& r : result.to_results(
             "wfs/traffic_closed_t" + std::to_string(threads))) {
      r.bytes_per_object = reg.memory_bytes();
      r.slow_path_entry_rate = rate;
      report.add(std::move(r));
    }
  }

  report.write();
}

}  // namespace
}  // namespace hi

int main(int argc, char** argv) {
  hi::emit_bench_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
