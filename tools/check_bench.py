#!/usr/bin/env python3
"""Gate and report on freshly emitted BENCH_*.json artifacts.

Usage:
    check_bench.py --fresh <dir> [--baseline <dir>] [--suites a,b,...]
                   [--warn-threshold 0.15]
    check_bench.py --self-test

Three responsibilities (docs/PERF.md "How CI consumes the artifacts"):

1. HARD GATE — allocation discipline. Every result row of every fresh
   BENCH_*.json must report allocs_per_op == 0.0: the RtEnv frame arena is
   supposed to absorb all coroutine frames, so ANY steady-state heap
   traffic is a regression (a missing field, or the legacy -1.0 "not
   measured" marker, also fails — a vacuous zero must not pass the gate).
   Exit status 1 on violation.

2. VISIBLE WARNING — throughput drift. Each fresh result is diffed against
   the committed baseline artifact of the same suite (bench/baselines/) by
   (name, threads) key. Rows regressing more than --warn-threshold
   (default 15%) are promoted from the scrolling per-row log to GitHub
   `::warning` annotations plus an end-of-run summary, so perf regressions
   stop scrolling by silently. CI-runner numbers are noisy, so this still
   never fails the job — it exists to make a human look (see the
   regression walkthrough in docs/PERF.md).

3. REPORT ONLY — per-row deltas (ops/sec and bytes_per_object) for trend
   reading in the log.

Some suites carry additional structural bounds: sharded (footprint vs
the domain/8 bitmap floor, shard-count throughput scaling on multi-core
hosts — check_sharded_suite, docs/PERF.md "Reading the sharded rows"),
waitfree_sim (slow_path_entry_rate presence/range, the forced-slow pin —
check_waitfree_sim_suite), and traffic (percentile ordering, the
batch_size_mean floor, open-loop pacing — check_traffic_suite,
docs/PERF.md "Reading the traffic rows").

--self-test exercises every gate against synthetic documents (schema,
alloc gate, sharded naming/footprint/scaling/skip logic, waitfree_sim
rates, traffic bounds, throughput warnings) and exits nonzero if any
gate misbehaves; CI runs it so the checker itself is under test.
"""

import argparse
import glob
import json
import os
import sys

DEFAULT_SUITES = ["registers", "rllsc", "universal", "max_register", "hi_set",
                  "sharded", "waitfree_sim", "traffic", "degradation"]

REQUIRED_ROW_KEYS = ("name", "threads", "ops_per_sec", "p50_ns", "p99_ns",
                     "allocs_per_op", "bytes_per_object")


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def check_schema(suite, doc):
    errors = []
    if doc.get("suite") != suite:
        errors.append(f"suite field is {doc.get('suite')!r}, expected {suite!r}")
    if "meta" not in doc:
        errors.append("missing meta block (compiler/flags provenance)")
    else:
        for key in ("compiler", "cplusplus", "optimize", "assertions",
                    "sanitizer", "arch"):
            if key not in doc["meta"]:
                errors.append(f"meta missing {key!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        errors.append("results must be a non-empty list")
        return errors
    for row in results:
        for key in REQUIRED_ROW_KEYS:
            if key not in row:
                errors.append(f"result {row.get('name', '?')!r} missing {key!r}")
    return errors


def check_alloc_gate(doc):
    """Returns rows violating the allocs_per_op == 0 steady-state contract."""
    bad = []
    for row in doc.get("results", []):
        allocs = row.get("allocs_per_op")
        if not isinstance(allocs, (int, float)) or allocs != 0:
            bad.append(row)
    return bad


def parse_sharded_row(name):
    """Splits a sharded-suite row name "<mix>/<n>M/s<shards>" into
    (domain, shards), or returns None for rows that do not follow the
    contract (bench/bench_sharded.cpp emits only conforming names)."""
    parts = name.split("/")
    if len(parts) != 3 or not parts[1].endswith("M"):
        return None
    if not parts[2].startswith("s"):
        return None
    try:
        domain = int(parts[1][:-1]) * 1_000_000
        shards = int(parts[2][1:])
    except ValueError:
        return None
    return domain, shards


def check_sharded_suite(doc):
    """Sharded-store acceptance bounds (docs/PERF.md "Reading the sharded
    rows"):

    * bytes_per_object ≤ 2 × domain/8 on EVERY row — the packed multi-word
      store must stay within 2× of the information-theoretic bitmap floor
      (the slack covers per-shard tail-word rounding). Hard failure.

    * ops/sec must scale 1 → 16 shards — monotonically non-decreasing
      across the s1/s4/s16 points of each striped mix, with s16 ≥ 2 × s1.
      This is an inter-core contention bound: it only MEANS anything when
      the recording host could run the bench threads on distinct cores, so
      it is enforced only when meta.host_cores ≥ the row's thread count
      (single-core containers time-slice the threads and the sweep is
      noise; the checker reports the skip instead of failing).
    """
    failures = []
    skips = []
    sweeps = {}
    for row in doc.get("results", []):
        parsed = parse_sharded_row(row.get("name", ""))
        if parsed is None:
            failures.append(
                f"row {row.get('name')!r} does not match the "
                "\"<mix>/<n>M/s<shards>\" naming contract")
            continue
        domain, shards = parsed
        bound = 2 * domain // 8
        if row.get("bytes_per_object", 0) > bound:
            failures.append(
                f"{row['name']}: bytes_per_object={row['bytes_per_object']} "
                f"exceeds 2x the domain/8 floor ({bound})")
        mix = row["name"].split("/")[0]
        if mix == "mixed":  # striped sweeps carry the scaling contract
            sweeps.setdefault((mix, domain), {})[shards] = row
    host_cores = doc.get("meta", {}).get("host_cores", 0)
    for (mix, domain), rows in sorted(sweeps.items()):
        points = [rows.get(s) for s in (1, 4, 16)]
        if any(p is None for p in points):
            continue  # partial sweep: nothing to compare
        threads = max(p.get("threads", 1) for p in points)
        if host_cores < threads:
            skips.append(
                f"{mix}/{domain // 1_000_000}M: host_cores={host_cores} < "
                f"threads={threads} — shard-scaling bound not applicable "
                "(no inter-core contention to eliminate)")
            continue
        rates = [p["ops_per_sec"] for p in points]
        if not (rates[0] <= rates[1] <= rates[2]):
            failures.append(
                f"{mix}/{domain // 1_000_000}M: ops/sec not monotone over "
                f"s1/s4/s16: {rates[0]:.0f} / {rates[1]:.0f} / "
                f"{rates[2]:.0f}")
        if rates[2] < 2 * rates[0]:
            failures.append(
                f"{mix}/{domain // 1_000_000}M: s16 must be >= 2x s1 "
                f"({rates[2]:.0f} vs {rates[0]:.0f} ops/s)")
    return failures, skips


def check_waitfree_sim_suite(doc):
    """Wait-free-simulation suite bounds (bench/bench_waitfree_sim.cpp):

    * EVERY row must report slow_path_entry_rate in [0, 1] — the combinator
      rows measure it from the alg's own counters and the alg4 control rows
      pin 0.0; a missing field means the emitter and the gate drifted apart.

    * The wfs/forced_slow_read row (fast_limit=0, read-only) must report
      exactly 1.0 — every operation is FORCED through announce → enqueue →
      help by construction, so any other value means the slow-path counter
      (or the fast-path bypass) is broken, not that the schedule was lucky.

    Contended rows are NOT required to show a positive rate: on a
    single-core host the threads time-slice and fast-path attempts rarely
    fail, which is a host property, not a combinator bug.
    """
    failures = []
    for row in doc.get("results", []):
        name = row.get("name", "?")
        rate = row.get("slow_path_entry_rate")
        if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
            failures.append(
                f"{name}: slow_path_entry_rate={rate!r} missing or outside "
                "[0, 1]")
            continue
        if name == "wfs/forced_slow_read" and rate != 1.0:
            failures.append(
                f"{name}: slow_path_entry_rate={rate} but fast_limit=0 "
                "forces EVERY op through the slow path (must be exactly 1.0)")
    return failures


def check_traffic_suite(doc):
    """Traffic-driver suite bounds (bench/bench_traffic.cpp, docs/PERF.md
    "Reading the traffic rows"):

    * latency percentiles must be ordered on EVERY row: p50 ≤ p99, and
      p99 ≤ p999 whenever p999_ns is present — a violation means the
      sojourn-histogram extraction is broken, not that the host was slow;

    * batch_size_mean, when present, must be ≥ 1 (an installed batch
      carries at least the winner's own op), and it MUST be present on
      combining rows ("combine" in the row name) — those rows exist to
      measure batching, so a missing field means the emitter and the gate
      drifted apart;

    * open-loop rows ("open" in the row name) must report offered_load and
      achieved_load with achieved ≤ 1.02 × offered — the open-loop driver
      paces arrivals at the offered rate, so achieving materially MORE
      than offered means the pacing or the accounting is broken. The 2%
      slack absorbs clock-edge jitter on short runs; closed-loop rows
      carry no offered/achieved contract (the loop itself is the pacer).
    """
    failures = []
    for row in doc.get("results", []):
        name = row.get("name", "?")
        p50, p99 = row.get("p50_ns"), row.get("p99_ns")
        p999 = row.get("p999_ns")
        if isinstance(p50, (int, float)) and isinstance(p99, (int, float)):
            if p50 > p99:
                failures.append(f"{name}: p50_ns={p50} > p99_ns={p99}")
            if isinstance(p999, (int, float)) and p99 > p999:
                failures.append(f"{name}: p99_ns={p99} > p999_ns={p999}")
        batch = row.get("batch_size_mean")
        if batch is not None:
            if not isinstance(batch, (int, float)) or batch < 1.0:
                failures.append(
                    f"{name}: batch_size_mean={batch!r} below 1 — a batch "
                    "installs at least the winner's own op")
        elif "combine" in name:
            failures.append(
                f"{name}: combining row is missing batch_size_mean")
        if "open" in name:
            offered = row.get("offered_load")
            achieved = row.get("achieved_load")
            if not isinstance(offered, (int, float)) or \
                    not isinstance(achieved, (int, float)):
                failures.append(
                    f"{name}: open-loop row missing offered_load/"
                    "achieved_load")
            elif achieved > 1.02 * offered:
                failures.append(
                    f"{name}: achieved_load={achieved:.0f} exceeds "
                    f"offered_load={offered:.0f} by more than 2% — the "
                    "open-loop pacer or the accounting is broken")
    return failures


# Stall-sweep families the degradation suite must emit in full: family
# prefix -> total thread count n (rows are "<family>_stall<k>of<n>" for
# every k in 0..n-1). Alg 4 is SWSR, so its sweep is the 2-thread
# configuration; the others run 3 threads.
DEGRADATION_FAMILIES = {
    "universal/plain": 3,
    "universal/combine": 3,
    "wfs/sim": 3,
    "alg4/native": 2,
}

DEGRADATION_BACKOFF_ROWS = ("rllsc/contended_backoff_off",
                            "rllsc/contended_backoff_on")


def check_degradation_suite(doc):
    """Graceful-degradation suite bounds (bench/bench_degradation.cpp,
    docs/FAULTS.md "Reading the degradation book"):

    * COMPLETE SWEEPS — every family in DEGRADATION_FAMILIES must appear at
      every stall count k in 0..n-1. A missing row means the emitter and
      the gate drifted apart, or a stalled configuration hung and its row
      was silently dropped — the exact outcome this suite exists to expose.

    * SURVIVOR PROGRESS — every stall row must report ops_per_sec > 0.
      All four families are lock-free or wait-free, so survivors MUST keep
      completing operations no matter how many peers are parked mid-op
      (k < n); zero survivor throughput is the perf-book face of the
      progress-gate failure the crash audits catch in the sim.

    * wfs/sim rows must carry slow_path_entry_rate in [0, 1] (stalled
      readers pushing survivors onto the slow path is the mechanism being
      measured) and alg4/native control rows must pin exactly 0.0 (no slow
      path exists to enter).

    * The rllsc/contended_backoff_{off,on} A/B pair must both be present —
      the bounded-backoff policy is only interpretable against its own
      control row from the same run.
    """
    failures = []
    rows = {row.get("name"): row for row in doc.get("results", [])}
    for family, n in sorted(DEGRADATION_FAMILIES.items()):
        for k in range(n):
            name = f"{family}_stall{k}of{n}"
            row = rows.get(name)
            if row is None:
                failures.append(
                    f"missing stall row {name!r} — the k-sweep for "
                    f"{family} must cover every k in 0..{n - 1}")
                continue
            ops = row.get("ops_per_sec")
            if not isinstance(ops, (int, float)) or ops <= 0:
                failures.append(
                    f"{name}: ops_per_sec={ops!r} — survivors of a "
                    "lock-free/wait-free object must keep completing ops "
                    f"with {k} of {n} threads stalled")
            rate = row.get("slow_path_entry_rate")
            if family == "wfs/sim":
                if not isinstance(rate, (int, float)) or \
                        not 0.0 <= rate <= 1.0:
                    failures.append(
                        f"{name}: slow_path_entry_rate={rate!r} missing or "
                        "outside [0, 1]")
            elif family == "alg4/native" and rate != 0.0:
                failures.append(
                    f"{name}: slow_path_entry_rate={rate!r} but the native "
                    "Alg 4 register has no slow path (must pin 0.0)")
    for name in DEGRADATION_BACKOFF_ROWS:
        if name not in rows:
            failures.append(
                f"missing backoff A/B row {name!r} — the policy row is "
                "only interpretable against its control from the same run")
    return failures


def report_throughput(suite, fresh, baseline, warn_threshold, warnings):
    if baseline is None:
        print(f"  [{suite}] no committed baseline — skipping throughput diff")
        return
    base_by_key = {
        (row["name"], row.get("threads", 1)): row
        for row in baseline.get("results", [])
    }
    for row in fresh.get("results", []):
        key = (row["name"], row.get("threads", 1))
        base = base_by_key.get(key)
        label = f"{row['name']} (threads={key[1]})"
        if base is None or not base.get("ops_per_sec"):
            print(f"  [{suite}] {label}: new result, no baseline")
            continue
        delta = (row["ops_per_sec"] - base["ops_per_sec"]) / base["ops_per_sec"]
        note = ""
        bytes_fresh = row.get("bytes_per_object")
        bytes_base = base.get("bytes_per_object")
        if bytes_base not in (None, bytes_fresh):
            note = f", bytes/object {bytes_base} -> {bytes_fresh}"
        print(f"  [{suite}] {label}: {row['ops_per_sec']:.0f} ops/s "
              f"vs baseline {base['ops_per_sec']:.0f} ({delta:+.1%}{note})")
        if delta < -warn_threshold:
            warnings.append(
                f"{suite}: {label} regressed {delta:+.1%} "
                f"({base['ops_per_sec']:.0f} -> {row['ops_per_sec']:.0f} "
                "ops/s vs committed baseline)")


# --------------------------------------------------------------- self-test

def _synthetic_row(name, threads=1, ops_per_sec=1e6, allocs_per_op=0.0,
                   bytes_per_object=0, **overrides):
    row = {"name": name, "threads": threads, "ops_per_sec": ops_per_sec,
           "p50_ns": 100, "p99_ns": 500, "allocs_per_op": allocs_per_op,
           "bytes_per_object": bytes_per_object}
    row.update(overrides)
    return row


def _synthetic_doc(suite, rows, host_cores=16):
    return {
        "suite": suite,
        "meta": {"compiler": "test", "cplusplus": 202002, "optimize": "-O2",
                 "assertions": False, "sanitizer": "none", "arch": "x86_64",
                 "host_cores": host_cores},
        "results": rows,
    }


def _sharded_doc(rates, bytes_factor=1.0, host_cores=16, threads=16,
                 mix="mixed"):
    """A striped s1/s4/s16 sweep at domain 4M with the given ops/sec points
    and bytes_per_object = bytes_factor × the domain/8 bitmap floor."""
    domain = 4_000_000
    rows = [
        _synthetic_row(f"{mix}/4M/s{shards}", threads=threads,
                       ops_per_sec=rate,
                       bytes_per_object=int(domain // 8 * bytes_factor))
        for shards, rate in zip((1, 4, 16), rates)
    ]
    return _synthetic_doc("sharded", rows, host_cores=host_cores)


def self_test():
    """Runs every gate against synthetic documents; returns an exit code."""
    problems = []

    def expect(condition, label):
        print(f"  [{'ok' if condition else 'FAIL'}] {label}")
        if not condition:
            problems.append(label)

    # Schema gate.
    good = _synthetic_doc("registers", [_synthetic_row("w/1")])
    expect(not check_schema("registers", good),
           "schema accepts a conforming document")
    expect(check_schema("rllsc", good),
           "schema rejects a suite-name mismatch")
    expect(check_schema("registers", {"suite": "registers"}),
           "schema rejects missing meta/results")
    truncated = _synthetic_doc("registers", [_synthetic_row("w/1")])
    del truncated["results"][0]["p99_ns"]
    expect(check_schema("registers", truncated),
           "schema rejects a row missing a required key")
    bare_meta = _synthetic_doc("registers", [_synthetic_row("w/1")])
    del bare_meta["meta"]["sanitizer"]
    expect(check_schema("registers", bare_meta),
           "schema rejects meta without provenance fields")

    # Alloc gate.
    expect(not check_alloc_gate(good),
           "alloc gate passes allocs_per_op == 0")
    expect(check_alloc_gate(
        _synthetic_doc("r", [_synthetic_row("w/1", allocs_per_op=0.25)])),
           "alloc gate flags nonzero allocs_per_op")
    expect(check_alloc_gate(
        _synthetic_doc("r", [_synthetic_row("w/1", allocs_per_op=-1.0)])),
           "alloc gate flags the legacy -1 'not measured' marker")
    unmeasured = _synthetic_doc("r", [_synthetic_row("w/1")])
    del unmeasured["results"][0]["allocs_per_op"]
    expect(check_alloc_gate(unmeasured),
           "alloc gate flags a missing allocs_per_op field")

    # Sharded row-name contract.
    expect(parse_sharded_row("mixed/4M/s16") == (4_000_000, 16),
           "parse_sharded_row decodes \"<mix>/<n>M/s<shards>\"")
    expect(parse_sharded_row("mixed/4M") is None,
           "parse_sharded_row rejects a missing shard component")
    expect(parse_sharded_row("mixed/4x/s2") is None,
           "parse_sharded_row rejects a malformed domain component")
    expect(parse_sharded_row("mixed/4M/16") is None,
           "parse_sharded_row rejects a shard component without 's'")

    # Sharded suite: pass / fail / skip.
    failures, skips = check_sharded_suite(_sharded_doc((1e6, 2e6, 3e6)))
    expect(not failures and not skips,
           "sharded: monotone 2x+ sweep within the footprint bound passes")
    failures, _ = check_sharded_suite(
        _sharded_doc((1e6, 2e6, 3e6), bytes_factor=2.5))
    expect(any("bytes_per_object" in f for f in failures),
           "sharded: footprint above 2x the domain/8 floor fails")
    failures, _ = check_sharded_suite(
        _synthetic_doc("sharded", [_synthetic_row("mixed-4M-s1")]))
    expect(any("naming contract" in f for f in failures),
           "sharded: a row violating the naming contract fails")
    failures, _ = check_sharded_suite(_sharded_doc((3e6, 2e6, 1e6)))
    expect(any("not monotone" in f for f in failures),
           "sharded: a non-monotone s1/s4/s16 sweep fails")
    failures, _ = check_sharded_suite(_sharded_doc((1e6, 1.5e6, 1.9e6)))
    expect(any(">= 2x" in f for f in failures),
           "sharded: s16 below 2x s1 fails")
    failures, skips = check_sharded_suite(
        _sharded_doc((3e6, 2e6, 1e6), host_cores=1))
    expect(not failures and any("host_cores" in s for s in skips),
           "sharded: the scaling bound is SKIPPED (not failed) when "
           "host_cores < threads")
    failures, skips = check_sharded_suite(
        _sharded_doc((1e6, 2e6, 3e6), mix="lookup"))
    expect(not failures and not skips,
           "sharded: non-mixed rows carry no scaling contract")

    # Wait-free-simulation suite: rate field presence / range / forced row.
    wfs_good = _synthetic_doc("waitfree_sim", [
        _synthetic_row("wfs/solo_read", slow_path_entry_rate=0.0),
        _synthetic_row("wfs/forced_slow_read", slow_path_entry_rate=1.0),
        _synthetic_row("alg4/solo_read", slow_path_entry_rate=0.0),
    ])
    expect(not check_waitfree_sim_suite(wfs_good),
           "waitfree_sim: rates in [0,1] with forced row at 1.0 pass")
    expect(check_waitfree_sim_suite(
        _synthetic_doc("waitfree_sim", [_synthetic_row("wfs/solo_read")])),
           "waitfree_sim: a row missing slow_path_entry_rate fails")
    expect(check_waitfree_sim_suite(
        _synthetic_doc("waitfree_sim", [
            _synthetic_row("wfs/solo_read", slow_path_entry_rate=1.5)])),
           "waitfree_sim: a rate outside [0,1] fails")
    expect(check_waitfree_sim_suite(
        _synthetic_doc("waitfree_sim", [
            _synthetic_row("wfs/forced_slow_read",
                           slow_path_entry_rate=0.4)])),
           "waitfree_sim: forced_slow_read below 1.0 fails")

    # Traffic suite: percentile ordering / batch floor / open-loop pacing.
    traffic_good = _synthetic_doc("traffic", [
        _synthetic_row("traffic/closed_contended_combine", p999_ns=900,
                       batch_size_mean=1.7),
        _synthetic_row("traffic/closed_contended_plain", p999_ns=900),
        _synthetic_row("traffic/open_poisson_combine", p999_ns=900,
                       batch_size_mean=1.0, offered_load=2e5,
                       achieved_load=1.99e5),
    ])
    expect(not check_traffic_suite(traffic_good),
           "traffic: ordered percentiles, batch >= 1, achieved <= offered "
           "pass")
    expect(check_traffic_suite(
        _synthetic_doc("traffic", [
            _synthetic_row("traffic/closed_contended_plain", p50_ns=600)])),
           "traffic: p50 above p99 fails")
    expect(check_traffic_suite(
        _synthetic_doc("traffic", [
            _synthetic_row("traffic/closed_contended_plain", p999_ns=400)])),
           "traffic: p99 above p999 fails")
    expect(check_traffic_suite(
        _synthetic_doc("traffic", [
            _synthetic_row("traffic/closed_contended_combine", p999_ns=900,
                           batch_size_mean=0.5)])),
           "traffic: batch_size_mean below 1 fails")
    expect(check_traffic_suite(
        _synthetic_doc("traffic", [
            _synthetic_row("traffic/closed_contended_combine",
                           p999_ns=900)])),
           "traffic: a combining row missing batch_size_mean fails")
    expect(not check_traffic_suite(
        _synthetic_doc("traffic", [
            _synthetic_row("traffic/closed_contended_plain", p999_ns=900)])),
           "traffic: a plain row may omit batch_size_mean")
    expect(check_traffic_suite(
        _synthetic_doc("traffic", [
            _synthetic_row("traffic/open_poisson_plain", p999_ns=900)])),
           "traffic: an open-loop row missing offered/achieved fails")
    expect(check_traffic_suite(
        _synthetic_doc("traffic", [
            _synthetic_row("traffic/open_poisson_plain", p999_ns=900,
                           offered_load=2e5, achieved_load=2.1e5)])),
           "traffic: achieved_load above 1.02x offered_load fails")
    expect(not check_traffic_suite(
        _synthetic_doc("traffic", [
            _synthetic_row("traffic/open_poisson_plain", p999_ns=900,
                           offered_load=2e5, achieved_load=2.03e5)])),
           "traffic: achieved within the 2% jitter slack passes")

    # Degradation suite: sweep completeness / survivor progress / rates /
    # the backoff A/B pair.
    def _degradation_rows():
        rows = []
        for family, n in DEGRADATION_FAMILIES.items():
            for k in range(n):
                rate = {"wfs/sim": 0.2, "alg4/native": 0.0}.get(family, -1.0)
                row = _synthetic_row(f"{family}_stall{k}of{n}", threads=n)
                if rate >= 0:
                    row["slow_path_entry_rate"] = rate
                rows.append(row)
        rows.extend(_synthetic_row(name, threads=3)
                    for name in DEGRADATION_BACKOFF_ROWS)
        return rows

    deg_good = _synthetic_doc("degradation", _degradation_rows())
    expect(not check_degradation_suite(deg_good),
           "degradation: complete sweeps with positive survivor throughput "
           "pass")
    deg_missing = _synthetic_doc("degradation", [
        r for r in _degradation_rows()
        if r["name"] != "universal/combine_stall2of3"])
    expect(any("missing stall row" in f
               for f in check_degradation_suite(deg_missing)),
           "degradation: a k-sweep with a missing stall count fails")
    deg_stuck = _synthetic_doc("degradation", _degradation_rows())
    for row in deg_stuck["results"]:
        if row["name"] == "wfs/sim_stall2of3":
            row["ops_per_sec"] = 0.0
    expect(any("survivors" in f for f in check_degradation_suite(deg_stuck)),
           "degradation: zero survivor throughput under stalls fails")
    deg_rate = _synthetic_doc("degradation", _degradation_rows())
    for row in deg_rate["results"]:
        if row["name"] == "wfs/sim_stall1of3":
            row["slow_path_entry_rate"] = 1.5
    expect(any("outside [0, 1]" in f
               for f in check_degradation_suite(deg_rate)),
           "degradation: a wfs rate outside [0,1] fails")
    deg_ctrl = _synthetic_doc("degradation", _degradation_rows())
    for row in deg_ctrl["results"]:
        if row["name"] == "alg4/native_stall0of2":
            row["slow_path_entry_rate"] = 0.3
    expect(any("no slow path" in f for f in check_degradation_suite(deg_ctrl)),
           "degradation: an alg4 control row off the 0.0 pin fails")
    deg_ab = _synthetic_doc("degradation", [
        r for r in _degradation_rows()
        if r["name"] != "rllsc/contended_backoff_on"])
    expect(any("backoff A/B" in f for f in check_degradation_suite(deg_ab)),
           "degradation: a missing backoff A/B row fails")

    # Throughput warnings.
    fresh = _synthetic_doc("registers",
                           [_synthetic_row("w/1", ops_per_sec=8e5)])
    baseline = _synthetic_doc("registers",
                              [_synthetic_row("w/1", ops_per_sec=1e6)])
    warnings = []
    report_throughput("registers", fresh, baseline, 0.15, warnings)
    expect(len(warnings) == 1,
           "throughput: a 20% drop vs baseline raises a warning")
    warnings = []
    report_throughput("registers", baseline, fresh, 0.15, warnings)
    expect(not warnings,
           "throughput: an improvement raises no warning")
    warnings = []
    report_throughput(
        "registers",
        _synthetic_doc("registers",
                       [_synthetic_row("w/1", ops_per_sec=9.5e5)]),
        baseline, 0.15, warnings)
    expect(not warnings,
           "throughput: a 5% drop stays below the warning threshold")

    if problems:
        print(f"\nself-test FAILED ({len(problems)} gate misbehaviors):",
              file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nself-test passed: every gate behaves as documented.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh",
                        help="directory holding freshly emitted BENCH_*.json")
    parser.add_argument("--self-test", action="store_true",
                        help="exercise every gate against synthetic documents "
                             "and exit (no artifacts needed)")
    parser.add_argument("--baseline", default=None,
                        help="directory holding committed baseline artifacts")
    parser.add_argument("--suites", default=",".join(DEFAULT_SUITES),
                        help="comma-separated suite names")
    parser.add_argument("--warn-threshold", type=float, default=0.15,
                        help="ops/sec regression fraction that raises a "
                             "visible CI warning (default 0.15 = 15%%)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.fresh:
        parser.error("--fresh is required unless --self-test is given")

    suites = [s for s in args.suites.split(",") if s]
    failures = []
    warnings = []
    for suite in suites:
        fresh_path = os.path.join(args.fresh, f"BENCH_{suite}.json")
        if not os.path.exists(fresh_path):
            failures.append(f"{suite}: missing fresh artifact {fresh_path}")
            continue
        try:
            fresh = load(fresh_path)
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"{suite}: unreadable fresh artifact: {err}")
            continue

        for err in check_schema(suite, fresh):
            failures.append(f"{suite}: schema: {err}")
        for row in check_alloc_gate(fresh):
            failures.append(
                f"{suite}: {row.get('name')!r} (threads="
                f"{row.get('threads')}) reports allocs_per_op="
                f"{row.get('allocs_per_op')!r}; steady state must be 0 — "
                "a coroutine frame escaped the arena or the probe is off")
        if suite == "sharded":
            sharded_failures, sharded_skips = check_sharded_suite(fresh)
            failures.extend(f"sharded: {f}" for f in sharded_failures)
            for skip in sharded_skips:
                print(f"  [sharded] skipped: {skip}")
        if suite == "waitfree_sim":
            failures.extend(
                f"waitfree_sim: {f}" for f in check_waitfree_sim_suite(fresh))
        if suite == "traffic":
            failures.extend(
                f"traffic: {f}" for f in check_traffic_suite(fresh))
        if suite == "degradation":
            failures.extend(
                f"degradation: {f}" for f in check_degradation_suite(fresh))

        baseline = None
        if args.baseline:
            base_path = os.path.join(args.baseline, f"BENCH_{suite}.json")
            if os.path.exists(base_path):
                try:
                    baseline = load(base_path)
                except (OSError, json.JSONDecodeError) as err:
                    print(f"  [{suite}] unreadable baseline ({err}); "
                          "skipping diff")
        report_throughput(suite, fresh, baseline, args.warn_threshold,
                          warnings)

    stray = sorted(
        os.path.basename(p) for p in glob.glob(
            os.path.join(args.fresh, "BENCH_*.json"))
        if os.path.basename(p)[len("BENCH_"):-len(".json")] not in suites)
    if stray:
        print(f"  note: unchecked artifacts present: {', '.join(stray)} "
              "(add them to --suites and bench/baselines/)")

    if warnings:
        # GitHub Actions renders `::warning` lines as job annotations, so a
        # regression is visible on the run summary page without log-diving;
        # locally they read as a plain summary block. Warnings never fail
        # the job — runner throughput is too noisy for a hard gate.
        print(f"\nBENCH throughput warnings (> {args.warn_threshold:.0%} "
              "below baseline):")
        for warning in warnings:
            print(f"::warning title=bench throughput regression::{warning}")
            print(f"  ! {warning}")
    if failures:
        print("\nBENCH check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nBENCH check passed: every suite reports allocs_per_op == 0"
          + (f"; {len(warnings)} throughput warning(s) above." if warnings
             else " and no throughput warnings."))
    return 0


if __name__ == "__main__":
    sys.exit(main())
